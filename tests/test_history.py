"""Tests for the statistics history window (repro.netsim.history)."""

import numpy as np
import pytest

from repro.netsim.history import GRADIENT_SCALE, RATE_RATIO_CAP, StatHistory
from repro.netsim.packet import Packet
from repro.netsim.sender import ExternalRateController, Flow


class TestStatHistory:
    def test_dimension(self):
        assert StatHistory(10).dim == 40
        assert StatHistory(3).dim == 12

    def test_initial_fill_is_neutral(self):
        h = StatHistory(2)
        np.testing.assert_allclose(h.vector(), [1, 1, 0, 1, 1, 1, 0, 1])

    def test_push_raw_slides_window(self):
        h = StatHistory(2)
        h.push_raw(2.0, 3.0, 0.5, 1.5)
        vec = h.vector()
        np.testing.assert_allclose(vec[:4], [1, 1, 0, 1])     # old neutral
        np.testing.assert_allclose(vec[4:], [2, 3, 0.5, 1.5])  # newest last

    def test_push_raw_clips(self):
        h = StatHistory(1)
        h.push_raw(100.0, 100.0, -100.0, 100.0)
        vec = h.vector()
        assert vec[0] == 10.0
        assert vec[1] == 10.0
        assert vec[2] == -10.0
        assert vec[3] == RATE_RATIO_CAP

    def test_reset_restores_neutral(self):
        h = StatHistory(2)
        h.push_raw(5, 5, 5, 2)
        h.reset()
        np.testing.assert_allclose(h.vector(), [1, 1, 0, 1, 1, 1, 0, 1])

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            StatHistory(0)

    def test_push_from_flow_stats(self):
        flow = Flow(flow_id=0, controller=ExternalRateController(100.0))
        p = Packet(flow_id=0, seq=0, send_time=0.0)
        flow.note_sent(p)
        flow.note_ack(p, now=0.05)
        stats = flow.finish_mi(0.5, capacity_pps=100.0, base_rtt=0.04, rate_pps=80.0)
        h = StatHistory(1)
        h.push(flow, stats)
        vec = h.vector()
        assert vec[0] == pytest.approx(1.0)           # send ratio
        assert vec[1] == pytest.approx(1.0)           # latency ratio
        assert vec[2] == pytest.approx(0.0)           # gradient
        # rate ratio: 80 pps over max throughput (1 ack / 0.5 s = 2 pps),
        # clipped at the cap.
        assert vec[3] == RATE_RATIO_CAP

    def test_rate_ratio_uses_max_throughput(self):
        flow = Flow(flow_id=0, controller=ExternalRateController(100.0))
        for i in range(50):
            p = Packet(flow_id=0, seq=i, send_time=i * 0.01)
            flow.note_sent(p)
            flow.note_ack(p, now=i * 0.01 + 0.04)
        stats = flow.finish_mi(0.5, 100.0, 0.04, rate_pps=50.0)
        assert flow.max_throughput_seen == pytest.approx(100.0)
        h = StatHistory(1)
        h.push(flow, stats)
        assert h.vector()[3] == pytest.approx(0.5)  # 50 pps / 100 pps max

    def test_gradient_scaling(self):
        flow = Flow(flow_id=0, controller=ExternalRateController(100.0))
        for i in range(10):
            p = Packet(flow_id=0, seq=i, send_time=i * 0.05)
            flow.note_sent(p)
            flow.note_ack(p, now=i * 0.05 + 0.04 + 0.001 * i)  # rising RTT
        stats = flow.finish_mi(0.5, 100.0, 0.04, 100.0)
        h = StatHistory(1)
        h.push(flow, stats)
        expected = stats.latency_gradient * GRADIENT_SCALE
        assert h.vector()[2] == pytest.approx(expected, rel=1e-6)
