"""Deterministic fault injection: specs, runtime, and engine identity.

Four layers of guarantees:

* **Specs validate and fingerprint.**  Bad fault parameters fail at
  construction; every fault knob reaches the topology signature, so a
  changed schedule is a changed cache key.
* **The fault runtime is a pure function of (schedule, seed, index).**
  Flap windows, brownout scaling, and Gilbert-Elliott chains replay
  exactly across ``reset()`` and are independent of query order.
* **Faults-off is bit-identical.**  A topology without faults builds
  links with ``fault is None`` -- the golden-trace suite pins the
  fast path itself.
* **Engines agree under faults.**  Every fault configuration produces
  identical record digests on the reference and kernel engines, under
  both transit schemes, and identically through serial, process-pool,
  and batched dispatch.
"""

import hashlib
import json

import pytest

from repro.eval.parallel import ParallelRunner, _record_to_json
from repro.eval.scenarios import ScenarioSuite, _topology_signature
from repro.netsim.faults import (
    BlackoutWindow,
    FaultProcess,
    GilbertElliottLoss,
    LinkFlapSchedule,
    RateBrownout,
    coerce_faults,
    fault_signature,
)
from repro.netsim.topology import dumbbell, parking_lot


def records_digest(records) -> str:
    blob = json.dumps([_record_to_json(r) for r in records], sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def suite_digests(suite, **runner_kwargs) -> dict:
    runner = ParallelRunner(use_cache=False, **runner_kwargs)
    result = runner.run(suite)
    return {r.scenario.name: records_digest(r.records) for r in result}


FLAP = LinkFlapSchedule(period=0.8, down_time=0.05, start=0.3, jitter=0.02)
GE = GilbertElliottLoss(p_enter_bad=0.01, p_exit_bad=0.25, loss_bad=0.4)
BROWNOUT = RateBrownout(start=0.5, duration=0.6, factor=0.35)
BLACKOUT = BlackoutWindow(start=1.0, duration=0.08, policy="drop")


class TestFaultSpecs:
    """Validation and signature coverage of the declarative specs."""

    @pytest.mark.parametrize("bad", [
        lambda: LinkFlapSchedule(period=0.0, down_time=0.1),
        lambda: LinkFlapSchedule(period=1.0, down_time=-0.1),
        # down_time + jitter must leave the link some uptime per cycle
        lambda: LinkFlapSchedule(period=1.0, down_time=0.9, jitter=0.2),
        lambda: LinkFlapSchedule(period=1.0, down_time=0.5, policy="eject"),
        lambda: GilbertElliottLoss(p_enter_bad=1.5, p_exit_bad=0.5),
        lambda: GilbertElliottLoss(p_enter_bad=0.1, p_exit_bad=0.5,
                                   loss_bad=-0.1),
        lambda: RateBrownout(start=0.0, duration=1.0, factor=0.0),
        lambda: RateBrownout(start=0.0, duration=1.0, factor=1.5),
        lambda: RateBrownout(start=0.0, duration=-1.0, factor=0.5),
        lambda: BlackoutWindow(start=-1.0, duration=0.1),
        lambda: BlackoutWindow(start=0.0, duration=0.1, policy="warp"),
    ])
    def test_bad_specs_fail_at_construction(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_signature_covers_every_field(self):
        # The replint fault-signature-coverage rule pins this statically;
        # this is the live mirror: every dataclass field appears.
        for spec in (FLAP, GE, BROWNOUT, BLACKOUT):
            fields = set(spec.__dataclass_fields__)
            assert fields == set(spec._signature_fields)

    def test_signature_changes_with_any_knob(self):
        base = fault_signature((FLAP,))
        for changed in (
                LinkFlapSchedule(period=0.9, down_time=0.05, start=0.3,
                                 jitter=0.02),
                LinkFlapSchedule(period=0.8, down_time=0.06, start=0.3,
                                 jitter=0.02),
                LinkFlapSchedule(period=0.8, down_time=0.05, start=0.4,
                                 jitter=0.02),
                LinkFlapSchedule(period=0.8, down_time=0.05, start=0.3,
                                 jitter=0.03),
                LinkFlapSchedule(period=0.8, down_time=0.05, start=0.3,
                                 jitter=0.02, policy="drop")):
            assert fault_signature((changed,)) != base

    def test_coerce_faults_shapes(self):
        assert coerce_faults(None) == ()
        assert coerce_faults(FLAP) == (FLAP,)
        assert coerce_faults([FLAP, GE]) == (FLAP, GE)
        with pytest.raises(TypeError):
            coerce_faults("flap")

    def test_topology_with_faults_fingerprints(self):
        sig = _topology_signature
        base = dumbbell(bandwidth_mbps=8.0)
        faulted = base.with_faults({"hop0": (FLAP, GE)})
        assert sig(base) != sig(faulted)
        # same schedule -> same signature; different schedule -> different
        assert sig(faulted) == sig(base.with_faults({"hop0": (FLAP, GE)}))
        assert sig(faulted) != sig(base.with_faults({"hop0": (FLAP,)}))
        # stripping back to fault-free restores the original signature
        assert sig(faulted.with_faults({"hop0": ()})) == sig(base)
        with pytest.raises(KeyError):
            base.with_faults({"no-such-link": FLAP})

    def test_faults_off_builds_unfaulted_links(self):
        topo = dumbbell(bandwidth_mbps=8.0).build(seed=3)
        assert all(link.fault is None for link in topo.links.values())
        faulted = dumbbell(bandwidth_mbps=8.0).with_faults(
            {"hop0": FLAP}).build(seed=3)
        assert faulted.links["hop0"].fault is not None


class TestFaultProcess:
    """The runtime: windows, scaling, and chain determinism."""

    def test_flap_windows_and_policy(self):
        proc = FaultProcess((LinkFlapSchedule(period=1.0, down_time=0.2,
                                              start=0.5),), seed=0, index=0)
        assert proc.outage_at(0.4) is None
        recovery, policy = proc.outage_at(0.55)
        assert recovery == pytest.approx(0.7)
        assert policy == "queue"
        assert proc.outage_at(0.75) is None
        recovery2, _ = proc.outage_at(1.6)  # second cycle
        assert recovery2 == pytest.approx(1.7)

    def test_blackout_drop_beats_queue(self):
        proc = FaultProcess(
            (BlackoutWindow(start=1.0, duration=0.5, policy="drop"),
             LinkFlapSchedule(period=10.0, down_time=2.0, start=0.5)),
            seed=0, index=0)
        recovery, policy = proc.outage_at(1.2)
        assert policy == "drop"
        assert recovery == pytest.approx(2.5)  # flap recovers later, wins

    def test_brownout_scale_is_static_and_bounded(self):
        proc = FaultProcess((BROWNOUT,), seed=0, index=0)
        assert proc.capacity_scale(0.4) == 1.0
        assert proc.capacity_scale(0.7) == pytest.approx(0.35)
        assert proc.capacity_scale(1.2) == 1.0

    def test_chain_replays_after_reset(self):
        proc = FaultProcess((GE,), seed=7, index=2)
        first = [proc.wire_loss(0.01 * i) for i in range(400)]
        proc.reset()
        again = [proc.wire_loss(0.01 * i) for i in range(400)]
        assert first == again
        assert any(first)  # loss_bad=0.4 must actually fire somewhere

    def test_flap_jitter_independent_of_loss_draws(self):
        # Flap windows are a pure function of (spec, cycle): draining
        # the GE chain between window queries must not move them.
        spec = LinkFlapSchedule(period=1.0, down_time=0.1, jitter=0.05)
        quiet = FaultProcess((spec, GE), seed=11, index=0)
        noisy = FaultProcess((spec, GE), seed=11, index=0)
        for i in range(300):
            noisy.wire_loss(0.001 * i)  # advance the loss stream only
        for t in (0.0, 0.95, 1.05, 2.02, 5.5, 9.97):
            assert quiet.outage_at(t) == noisy.outage_at(t)

    def test_streams_keyed_by_seed_and_index(self):
        a = FaultProcess((GE,), seed=1, index=0)
        b = FaultProcess((GE,), seed=2, index=0)
        c = FaultProcess((GE,), seed=1, index=1)
        draws = lambda p: [p.wire_loss(0.01 * i) for i in range(300)]
        base = draws(FaultProcess((GE,), seed=1, index=0))
        assert draws(a) == base
        assert draws(b) != base
        assert draws(c) != base


def faulted_suite(engine, transit="event", schemes=("cubic", "vivace"),
                  faults=None):
    topo = parking_lot(2, bandwidth_mbps=6.0, delay_ms=8.0)
    return ScenarioSuite(
        name=f"faults-{engine}-{transit}",
        lineups=[schemes],
        topologies=(topo,),
        faults=(faults if faults is not None
                else {"hop0": (FLAP, GE), "hop1": (BROWNOUT, BLACKOUT)},),
        transits=(transit,),
        engines=(engine,),
        duration=4.0,
        seeds=(0,))


class TestEngineIdentityUnderFaults:
    """reference == kernel, event and eager, across fault mixes."""

    CONFIGS = [
        {"hop0": (FLAP,)},
        {"hop0": (GE,)},
        {"hop0": (BROWNOUT,)},
        {"hop0": (BLACKOUT,)},
        {"hop0": (LinkFlapSchedule(period=0.7, down_time=0.06,
                                   policy="drop"),)},
        {"hop0": (FLAP, GE), "hop1": (BROWNOUT, BLACKOUT)},
    ]

    @pytest.mark.parametrize("transit", ["event", "eager"])
    @pytest.mark.parametrize("config", CONFIGS,
                             ids=lambda c: "+".join(
                                 f"{k}:{'+'.join(type(s).__name__ for s in v)}"
                                 for k, v in sorted(c.items())))
    def test_digests_match(self, transit, config):
        digests = {}
        for engine in ("reference", "kernel"):
            suite = faulted_suite(engine, transit=transit, faults=config)
            runner = ParallelRunner(n_workers=1, use_cache=False)
            result = runner.run(suite)
            digests[engine] = [
                (records_digest(r.records), r.events) for r in result]
        assert digests["reference"] == digests["kernel"]
        # a fault mix that never perturbs anything would vacuously pass:
        # the same lineup without faults must differ
        clean = ParallelRunner(n_workers=1, use_cache=False).run(
            faulted_suite("reference", transit=transit,
                          faults={"hop0": ()}))
        clean_digests = [(records_digest(r.records), r.events)
                         for r in clean]
        assert clean_digests != digests["reference"]


class TestDispatchIdentityUnderFaults:
    """serial == process-pool == batched for a faulted grid."""

    def test_all_dispatch_paths_agree(self):
        def grid(engine):
            return ScenarioSuite(
                name="faults-dispatch",
                lineups=[("cubic", "bbr")],
                topologies=(parking_lot(2, bandwidth_mbps=6.0),),
                faults=(None, {"hop0": (FLAP, GE)}),
                engines=(engine,),
                duration=3.0,
                seeds=(0, 1))

        for engine in ("reference", "kernel"):
            serial = suite_digests(grid(engine), n_workers=1)
            pooled = suite_digests(grid(engine), n_workers=2, batch_size=1)
            batched = suite_digests(grid(engine), n_workers=2, batch_size=3)
            assert serial == pooled == batched
            assert len(serial) == 4  # faults axis (2) x seeds (2)
