"""Tests for flow accounting and monitor-interval statistics."""

import numpy as np
import pytest

from repro.netsim.packet import Packet
from repro.netsim.sender import (
    ExternalRateController,
    Flow,
    LATENCY_RATIO_CAP,
    MonitorIntervalStats,
    SEND_RATIO_CAP,
    _rtt_slope,
)


def make_flow(**kwargs):
    return Flow(flow_id=0, controller=ExternalRateController(100.0), **kwargs)


def packet(seq=0, send_time=0.0):
    return Packet(flow_id=0, seq=seq, send_time=send_time)


class TestFlowAccounting:
    def test_sent_counts(self):
        flow = make_flow()
        flow.note_sent(packet(0))
        flow.note_sent(packet(1))
        assert flow.total_sent == 2
        assert flow.inflight == 2
        assert flow.mi_sent == 2

    def test_ack_updates_rtt(self):
        flow = make_flow()
        p = packet(0, send_time=1.0)
        flow.note_sent(p)
        flow.note_ack(p, now=1.05)
        assert flow.last_rtt == pytest.approx(0.05)
        assert flow.min_rtt_seen == pytest.approx(0.05)
        assert flow.inflight == 0

    def test_srtt_ewma(self):
        flow = make_flow()
        p1, p2 = packet(0, 0.0), packet(1, 0.0)
        flow.note_sent(p1)
        flow.note_sent(p2)
        flow.note_ack(p1, now=0.1)
        flow.note_ack(p2, now=0.2)
        assert flow.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)

    def test_min_rtt_tracks_minimum(self):
        flow = make_flow()
        for i, rtt in enumerate([0.05, 0.03, 0.08]):
            p = packet(i, send_time=float(i))
            flow.note_sent(p)
            flow.note_ack(p, now=i + rtt)
        assert flow.min_rtt_seen == pytest.approx(0.03)

    def test_loss_decrements_inflight(self):
        flow = make_flow()
        p = packet(0)
        flow.note_sent(p)
        flow.note_loss(p, now=0.1)
        assert flow.inflight == 0
        assert flow.total_lost == 1


class TestMonitorInterval:
    def _run_mi(self, flow, rtts, lost=0, t0=0.0):
        for i, rtt in enumerate(rtts):
            p = packet(i, send_time=t0 + 0.01 * i)
            flow.note_sent(p)
            flow.note_ack(p, now=t0 + 0.01 * i + rtt)
        for j in range(lost):
            p = packet(100 + j, send_time=t0)
            flow.note_sent(p)
            flow.note_loss(p, now=t0 + 0.1)
        return flow.finish_mi(t0 + 0.5, capacity_pps=100.0, base_rtt=0.04,
                              rate_pps=80.0)

    def test_basic_stats(self):
        flow = make_flow()
        stats = self._run_mi(flow, [0.05, 0.05, 0.05])
        assert stats.sent == 3
        assert stats.acked == 3
        assert stats.lost == 0
        assert stats.mean_rtt == pytest.approx(0.05)

    def test_accumulators_reset_after_mi(self):
        flow = make_flow()
        self._run_mi(flow, [0.05])
        assert flow.mi_sent == 0
        assert flow.mi_acked == 0
        assert flow.mi_rtt_samples == []

    def test_loss_rate(self):
        flow = make_flow()
        stats = self._run_mi(flow, [0.05, 0.05], lost=2)
        assert stats.loss_rate == pytest.approx(0.5)

    def test_throughput(self):
        flow = make_flow()
        stats = self._run_mi(flow, [0.05] * 10)
        assert stats.throughput_pps == pytest.approx(10 / 0.5)

    def test_utilization_clipped(self):
        stats = MonitorIntervalStats(flow_id=0, start=0, end=1, sent=500, acked=500,
                                     lost=0, mean_rtt=0.05, min_rtt=0.05,
                                     latency_gradient=0, capacity_pps=100.0,
                                     base_rtt=0.04, packet_bytes=1500, rate_pps=500)
        assert stats.utilization == 1.0

    def test_empty_mi(self):
        flow = make_flow()
        stats = flow.finish_mi(0.5, capacity_pps=100.0, base_rtt=0.04, rate_pps=10.0)
        assert stats.mean_rtt is None
        assert stats.latency_gradient == 0.0
        assert stats.send_ratio() == 1.0

    def test_send_ratio_cap_when_no_acks(self):
        flow = make_flow()
        flow.note_sent(packet(0))
        stats = flow.finish_mi(0.5, 100.0, 0.04, 10.0)
        assert stats.send_ratio() == SEND_RATIO_CAP

    def test_send_ratio_normal(self):
        flow = make_flow()
        stats = self._run_mi(flow, [0.05, 0.05], lost=2)  # sent 4, acked 2
        assert stats.send_ratio() == pytest.approx(2.0)


class TestLatencyRatio:
    def test_first_interval_is_one(self):
        flow = make_flow()
        p = packet(0, 0.0)
        flow.note_sent(p)
        flow.note_ack(p, 0.05)
        stats = flow.finish_mi(0.5, 100.0, 0.04, 10.0)
        assert flow.latency_ratio(stats) == pytest.approx(1.0)

    def test_ratio_grows_with_latency(self):
        flow = make_flow()
        p = packet(0, 0.0)
        flow.note_sent(p)
        flow.note_ack(p, 0.05)
        flow.finish_mi(0.5, 100.0, 0.04, 10.0)
        p2 = packet(1, 0.6)
        flow.note_sent(p2)
        flow.note_ack(p2, 0.6 + 0.10)
        stats2 = flow.finish_mi(1.0, 100.0, 0.04, 10.0)
        assert flow.latency_ratio(stats2) == pytest.approx(2.0)

    def test_capped_when_unknown(self):
        flow = make_flow()
        stats = flow.finish_mi(0.5, 100.0, 0.04, 10.0)
        assert flow.latency_ratio(stats) == LATENCY_RATIO_CAP


class TestRttSlope:
    def test_flat(self):
        samples = [(0.0, 0.05), (1.0, 0.05), (2.0, 0.05)]
        assert _rtt_slope(samples) == pytest.approx(0.0)

    def test_linear_increase(self):
        samples = [(t, 0.05 + 0.01 * t) for t in np.linspace(0, 1, 10)]
        assert _rtt_slope(samples) == pytest.approx(0.01, rel=1e-6)

    def test_linear_decrease(self):
        samples = [(t, 0.05 - 0.02 * t) for t in np.linspace(0, 1, 10)]
        assert _rtt_slope(samples) == pytest.approx(-0.02, rel=1e-6)

    def test_single_sample_is_zero(self):
        assert _rtt_slope([(0.0, 0.05)]) == 0.0

    def test_simultaneous_samples(self):
        assert _rtt_slope([(1.0, 0.05), (1.0, 0.07)]) == 0.0


class TestAggregates:
    def test_mean_throughput_over_records(self):
        flow = make_flow()
        for k in range(3):
            for i in range(5):
                p = packet(k * 10 + i, send_time=k * 1.0)
                flow.note_sent(p)
                flow.note_ack(p, now=k * 1.0 + 0.05)
            flow.finish_mi((k + 1) * 1.0, 100.0, 0.04, 10.0)
        assert flow.mean_throughput_pps() == pytest.approx(15 / 3.0)

    def test_overall_loss_rate(self):
        flow = make_flow()
        p1, p2 = packet(0), packet(1)
        flow.note_sent(p1)
        flow.note_sent(p2)
        flow.note_ack(p1, 0.05)
        flow.note_loss(p2, 0.1)
        assert flow.overall_loss_rate() == pytest.approx(0.5)

    def test_empty_flow(self):
        flow = make_flow()
        assert flow.mean_throughput_pps() == 0.0
        assert flow.mean_rtt() is None
        assert flow.overall_loss_rate() == 0.0
