"""Tests for the topology layer: live topologies, specs, builders, and
multi-bottleneck simulation semantics (per-flow paths and RTTs)."""

import numpy as np
import pytest

from repro.netsim.link import Link, PropagationLink
from repro.netsim.network import FlowSpec, Simulation
from repro.netsim.sender import ExternalRateController
from repro.netsim.topology import (
    LinkDef,
    PathDef,
    Topology,
    TopologySpec,
    chain,
    dumbbell,
    dumbbell_asymmetric,
    parking_lot,
)
from repro.netsim.traces import ConstantTrace


def make_link(pps=100.0, delay=0.02, queue=50, loss=0.0, seed=0, name=""):
    return Link(ConstantTrace(pps), delay=delay, queue_size=queue,
                loss_rate=loss, rng=np.random.default_rng(seed), name=name)


class TestLiveTopology:
    def test_single_path_wraps_link_list(self):
        links = [make_link(delay=0.01), make_link(delay=0.02)]
        topo = Topology.single_path(links)
        path = topo.path()
        assert path.links == tuple(links)
        assert path.base_rtt == pytest.approx(0.06)
        assert path.return_delay == pytest.approx(0.03)

    def test_parking_lot_paths(self):
        links = [make_link(delay=0.01), make_link(delay=0.02)]
        topo = Topology.parking_lot(links)
        assert set(topo.paths) == {"through", "cross0", "cross1"}
        assert topo.default_path == "through"
        assert topo.path("cross1").links == (links[1],)
        assert topo.path("cross1").base_rtt == pytest.approx(0.04)
        assert topo.path("through").base_rtt == pytest.approx(0.06)

    def test_asymmetric_return_delay(self):
        topo = Topology({"a": make_link(delay=0.01)}, {"p": ("a",)},
                        return_delays={"p": 0.05})
        assert topo.path("p").base_rtt == pytest.approx(0.06)

    def test_unknown_path_and_link_rejected(self):
        with pytest.raises(KeyError, match="unknown link"):
            Topology({"a": make_link()}, {"p": ("a", "b")})
        topo = Topology({"a": make_link()}, {"p": ("a",)})
        with pytest.raises(KeyError, match="unknown path"):
            topo.path("q")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Topology({}, {"p": ("a",)})
        with pytest.raises(ValueError):
            Topology({"a": make_link()}, {})
        with pytest.raises(ValueError, match="no links"):
            Topology({"a": make_link()}, {"p": ()})

    def test_default_reverse_is_propagation_pseudo_link(self):
        topo = Topology.single_path([make_link(delay=0.01),
                                     make_link(delay=0.02)])
        path = topo.path()
        assert path.reverse_link_names == ()
        assert len(path.reverse_links) == 1
        assert isinstance(path.reverse_links[0], PropagationLink)
        assert path.reverse_links[0].delay == pytest.approx(0.03)

    def test_wired_reverse_path(self):
        links = {"fwd": make_link(delay=0.01, name="fwd"),
                 "rev": make_link(delay=0.03, name="rev")}
        topo = Topology(links, {"p": ("fwd",)},
                        reverse_paths={"p": ("rev",)})
        path = topo.path("p")
        assert path.reverse_link_names == ("rev",)
        assert path.reverse_links == (links["rev"],)
        # Return delay is the reverse links' propagation sum.
        assert path.return_delay == pytest.approx(0.03)
        assert path.base_rtt == pytest.approx(0.04)

    def test_per_path_ack_bytes(self):
        links = {"a": make_link(name="a")}
        topo = Topology(links, {"p": ("a",), "q": ("a",)},
                        ack_bytes={"p": 120})
        assert topo.path("p").ack_bytes == 120
        assert topo.path("q").ack_bytes is None  # engine default
        with pytest.raises(KeyError, match="unknown path"):
            Topology(links, {"p": ("a",)}, ack_bytes={"zz": 120})
        with pytest.raises(ValueError, match="positive"):
            Topology(links, {"p": ("a",)}, ack_bytes={"p": 0})

    def test_reverse_path_validation(self):
        links = {"a": make_link()}
        with pytest.raises(KeyError, match="unknown link"):
            Topology(links, {"p": ("a",)}, reverse_paths={"p": ("zz",)})
        with pytest.raises(ValueError, match="no links"):
            Topology(links, {"p": ("a",)}, reverse_paths={"p": ()})
        with pytest.raises(ValueError, match="pick one"):
            Topology(links, {"p": ("a",)}, return_delays={"p": 0.05},
                     reverse_paths={"p": ("a",)})
        # A typo'd path name must fail loudly, not silently fall back
        # to the pure-propagation return.
        with pytest.raises(KeyError, match="unknown path"):
            Topology(links, {"p": ("a",)}, reverse_paths={"q": ("a",)})
        with pytest.raises(KeyError, match="unknown path"):
            Topology(links, {"p": ("a",)}, return_delays={"q": 0.05})


class TestTopologySpec:
    def test_builders_shape(self):
        assert len(dumbbell().links) == 1
        c = chain(3, bandwidth_mbps=(10.0, 20.0, 30.0))
        assert [ld.bandwidth_mbps for ld in c.links] == [10.0, 20.0, 30.0]
        assert c.path().links == ("hop0", "hop1", "hop2")
        p = parking_lot(2)
        assert p.path_names() == ("through", "cross0", "cross1")
        assert p.default_path == "through"

    def test_per_hop_broadcast_length_checked(self):
        with pytest.raises(ValueError, match="2 entries for 3 hops"):
            chain(3, bandwidth_mbps=(10.0, 20.0))

    def test_parking_lot_needs_two_hops(self):
        with pytest.raises(ValueError):
            parking_lot(1)

    def test_duplicate_and_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate link names"):
            TopologySpec(name="t", links=(LinkDef("a"), LinkDef("a")),
                         paths=(PathDef("p", ("a",)),))
        with pytest.raises(ValueError, match="unknown"):
            TopologySpec(name="t", links=(LinkDef("a"),),
                         paths=(PathDef("p", ("a", "zz")),))
        with pytest.raises(ValueError, match="default path"):
            TopologySpec(name="t", links=(LinkDef("a"),),
                         paths=(PathDef("p", ("a",)),), default_path="q")

    def test_path_helpers(self):
        spec = parking_lot(2, bandwidth_mbps=(8.0, 16.0), delay_ms=(10.0, 5.0))
        assert spec.path_one_way_ms("through") == pytest.approx(15.0)
        assert spec.path_rtt_s("cross1") == pytest.approx(0.01)
        assert spec.path_bottleneck_mbps("through") == 8.0
        assert spec.path_bottleneck_mbps("cross1") == 16.0

    def test_build_is_deterministic_and_sized(self):
        spec = parking_lot(2, bandwidth_mbps=12.0, delay_ms=10.0,
                           loss_rate=0.1)
        a, b = spec.build(seed=5), spec.build(seed=5)
        assert list(a.links) == ["hop0", "hop1"]
        # BDP-relative buffer against the longest path through the link
        # (the 40 ms through-path RTT, not the hop's own 20 ms).
        pps = 12.0 * 1e6 / (1500 * 8)
        assert a.links["hop0"].queue_size == int(round(pps * 0.04))
        # Same seed, same loss RNG stream.
        draws_a = [a.links["hop0"].rng.random() for _ in range(5)]
        draws_b = [b.links["hop0"].rng.random() for _ in range(5)]
        assert draws_a == draws_b

    def test_build_resolves_named_traces(self):
        spec = dumbbell(trace="fig1-step")
        link = spec.build().links["hop0"]
        assert type(link.trace).__name__ == "StepTrace"

    def test_queue_packets_overrides_bdp(self):
        spec = dumbbell(queue_packets=7)
        assert spec.build().links["hop0"].queue_size == 7

    def test_pathdef_reverse_validation(self):
        with pytest.raises(ValueError, match="not both"):
            PathDef("p", ("a",), return_delay_ms=5.0, reverse_links=("b",))
        with pytest.raises(ValueError, match="at least one link"):
            PathDef("p", ("a",), reverse_links=())
        with pytest.raises(ValueError, match="reverse path of 'p'"):
            TopologySpec(name="t", links=(LinkDef("a"),),
                         paths=(PathDef("p", ("a",), reverse_links=("zz",)),))

    def test_pathdef_ack_bytes_builds_through(self):
        spec = TopologySpec(
            name="t", links=(LinkDef("a"),),
            paths=(PathDef("p", ("a",), ack_bytes=90), PathDef("q", ("a",))))
        topo = spec.build()
        assert topo.path("p").ack_bytes == 90
        assert topo.path("q").ack_bytes is None
        with pytest.raises(ValueError, match="positive"):
            PathDef("p", ("a",), ack_bytes=-1)

    def test_dumbbell_asymmetric_ack_bytes(self):
        spec = dumbbell_asymmetric(16.0, ack_bytes=200)
        assert spec.path("through").ack_bytes == 200
        assert spec.path("reverse").ack_bytes == 200
        assert dumbbell_asymmetric(16.0).path("through").ack_bytes is None

    def test_dumbbell_asymmetric_shape(self):
        spec = dumbbell_asymmetric(20.0, delay_ms=10.0)
        assert [ld.name for ld in spec.links] == ["fwd", "rev"]
        assert spec._link("rev").bandwidth_mbps == pytest.approx(2.0)
        assert spec.path("through").links == ("fwd",)
        assert spec.path("through").reverse_links == ("rev",)
        assert spec.path("reverse").reverse_links == ("fwd",)
        assert spec.default_path == "through"
        # Symmetric delays by default: 20 ms round trip either way.
        assert spec.path_rtt_s("through") == pytest.approx(0.02)
        assert spec.path_return_ms("through") == pytest.approx(10.0)

    def test_asymmetric_build_wires_reverse_links(self):
        topo = dumbbell_asymmetric(16.0, delay_ms=8.0,
                                   reverse_delay_ms=24.0).build()
        path = topo.path("through")
        assert path.reverse_links == (topo.links["rev"],)
        assert path.base_rtt == pytest.approx(0.032)

    def test_with_reverse_paths_wires_and_strips(self):
        spec = dumbbell_asymmetric(16.0, delay_ms=8.0, reverse_delay_ms=24.0)
        twin = spec.with_reverse_paths({"through": None, "reverse": None})
        # The twin keeps the same propagation RTT without queued links.
        assert twin.path("through").reverse_links is None
        assert twin.path("through").return_delay_ms == pytest.approx(24.0)
        assert twin.path_rtt_s("through") == pytest.approx(spec.path_rtt_s("through"))
        built = twin.build()
        assert isinstance(built.path("through").reverse_links[0],
                          PropagationLink)
        # Re-wiring the twin round-trips to the original shape.
        rewired = twin.with_reverse_paths({"through": ("rev",)})
        assert rewired.path("through").reverse_links == ("rev",)
        with pytest.raises(KeyError, match="unknown path"):
            spec.with_reverse_paths({"nope": ("rev",)})


class TestSimulationOverTopology:
    def test_per_flow_base_rtt(self):
        links = [make_link(delay=0.01, seed=1), make_link(delay=0.02, seed=2)]
        topo = Topology.parking_lot(links)
        sim = Simulation(topo, [
            FlowSpec(ExternalRateController(50.0), path="through"),
            FlowSpec(ExternalRateController(50.0), path="cross1"),
        ], duration=2.0, seed=3)
        assert sim.flows[0].base_rtt == pytest.approx(0.06)
        assert sim.flows[1].base_rtt == pytest.approx(0.04)
        # Engine-level default-path RTT is the topology's default path.
        assert sim.base_rtt == pytest.approx(0.06)

    def test_unknown_flow_path_rejected(self):
        topo = Topology.single_path([make_link()])
        with pytest.raises(KeyError, match="unknown path"):
            Simulation(topo, [FlowSpec(ExternalRateController(1.0),
                                       path="nope")], duration=1.0)

    def test_cross_traffic_only_contends_on_its_hop(self):
        """Cross flows on different hops do not share any queue."""
        links = [make_link(pps=100.0, delay=0.01, seed=4, name="a"),
                 make_link(pps=100.0, delay=0.01, seed=5, name="b")]
        topo = Topology.parking_lot(links)
        sim = Simulation(topo, [
            FlowSpec(ExternalRateController(90.0), path="cross0"),
            FlowSpec(ExternalRateController(90.0), path="cross1"),
        ], duration=10.0, seed=6)
        r0, r1 = sim.run_all()
        # Each flow has its 100 pps hop to itself: no loss, full rate.
        assert r0.loss_rate == 0.0 and r1.loss_rate == 0.0
        assert r0.mean_throughput_pps == pytest.approx(90.0, rel=0.05)
        assert r1.mean_throughput_pps == pytest.approx(90.0, rel=0.05)

    def test_through_flow_contends_on_every_hop(self):
        """A through flow shares each queue with that hop's cross flow."""
        links = [make_link(pps=100.0, delay=0.01, queue=20, seed=7),
                 make_link(pps=100.0, delay=0.01, queue=20, seed=8)]
        topo = Topology.parking_lot(links)
        sim = Simulation(topo, [
            FlowSpec(ExternalRateController(100.0), path="through"),
            FlowSpec(ExternalRateController(100.0), path="cross0"),
            FlowSpec(ExternalRateController(100.0), path="cross1"),
        ], duration=20.0, seed=9)
        through, c0, c1 = sim.run_all()
        # Every hop is overloaded (through + cross offer 200 pps at 100
        # pps capacity), so everyone sees loss and nobody exceeds a
        # fair-ish share; the through flow pays on both queues.
        assert through.loss_rate > 0.2
        assert through.mean_throughput_pps < 70.0
        total0 = through.mean_throughput_pps + c0.mean_throughput_pps
        assert total0 == pytest.approx(100.0, rel=0.1)

    def test_multihop_drop_notice_uses_path_timing(self):
        """Loss notices honour accumulated wire timing per path.

        One packet through two links; the second link random-drops it.
        The notice must reflect the true cursor: queue+service+delay of
        both links plus the return propagation -- not the old
        ``now + base_rtt + queue_delay`` shortcut (0.12 here).
        """
        a = make_link(pps=100.0, delay=0.01, queue=100, seed=10)
        b = make_link(pps=50.0, delay=0.05, queue=100, loss=1.0 - 1e-12,
                      seed=11)
        times = []

        class Recorder(ExternalRateController):
            def on_loss(self, flow, packet, now):
                times.append(now)

        # hop_jitter=0: this is a unit test of the notice-cursor
        # arithmetic, not of the forwarding dither.
        sim = Simulation([a, b], [FlowSpec(Recorder(0.5))], duration=1.0,
                         seed=12, hop_jitter=0.0)
        sim.run()
        # depart(a) = 0.01 service + 0.01 delay = 0.02;
        # depart(b) = 0.02 + 0.02 service + 0.05 delay = 0.09;
        # notice = 0.09 + return delay 0.06 = 0.15.
        assert times and times[0] == pytest.approx(0.15, abs=1e-9)

    def test_stop_time_mi_accounting_not_inflated(self):
        """Regression: acks draining after stop_time must not be
        crammed into an MI clamped at stop_time.

        200 pps into a 50 pps link with a deep buffer, stopping at 1 s:
        ~150 packets are still queued at the stop and their acks arrive
        until ~4 s.  Pre-fix, the final MI ended at 1.0 s while
        counting those acks, inflating flow throughput ~4x above link
        capacity.
        """
        link = make_link(pps=50.0, delay=0.01, queue=10**6, seed=13)
        sim = Simulation(link, [FlowSpec(ExternalRateController(200.0),
                                         stop_time=1.0)],
                         duration=8.0, seed=13)
        record = sim.run_all()[0]
        final = record.records[-1]
        assert final.end > 1.5  # extends to the true last ack
        assert final.throughput_pps <= 50.0 * 1.05
        assert record.mean_throughput_pps <= 50.0 * 1.05
        # Everything sent was eventually accounted.
        flow = sim.flows[0]
        assert flow.total_acked + flow.total_lost + flow.inflight == flow.total_sent

    def test_loss_notice_charges_downstream_queue_occupancy(self):
        """Regression (fails on the pure-propagation engine): a buffer
        drop on hop 0 while hop 1 holds a deep queue must push the loss
        notice out by that queue's drain time, not bare propagation.

        80 pps into a 40 pps hop with a 2-packet buffer: half the
        packets buffer-drop on hop 0.  The survivors (40 pps) overload
        the 30 pps second hop, whose queue grows ~10 pkt/s.  Under pure
        propagation every notice lands exactly at ``send + q0 + d0 +
        d1 + return``; with occupancy charging, late notices trail that
        bound by the seconds of queue standing on hop 1.
        """
        a = make_link(pps=40.0, delay=0.01, queue=2, seed=20)
        b = make_link(pps=30.0, delay=0.05, queue=1000, seed=21)
        losses = []

        class Recorder(ExternalRateController):
            def on_loss(self, flow, packet, now):
                losses.append((now, packet))

        sim = Simulation([a, b], [FlowSpec(Recorder(80.0))], duration=8.0,
                         seed=22)
        sim.run_all()
        assert len(losses) > 50
        # Every drop here is a hop-0 buffer drop, so the old engine's
        # notice time is exactly reconstructable per packet.
        excess = [now - (p.send_time + p.queue_delay + a.delay + b.delay
                         + 0.06)
                  for now, p in losses]
        assert min(excess) > 0.0  # at least hop-1 service is charged
        assert max(excess) > 0.5  # standing hop-1 queue dominates late notices

    def test_legacy_link_list_equivalent_to_single_path_topology(self):
        def run(arg):
            sim = Simulation(arg, [FlowSpec(ExternalRateController(80.0))],
                             duration=5.0, seed=14)
            rec = sim.run_all()[0]
            return (rec.mean_throughput_pps, rec.mean_rtt, rec.loss_rate)

        links1 = [make_link(seed=15), make_link(seed=16, delay=0.01)]
        links2 = [make_link(seed=15), make_link(seed=16, delay=0.01)]
        assert run(links1) == run(Topology.single_path(links2))


def asym_topology(rev_pps=50.0, wire=True):
    """A live asymmetric dumbbell: fast ``fwd``, skinny queued ``rev``."""
    links = {"fwd": make_link(pps=1000.0, delay=0.01, queue=200, name="fwd"),
             "rev": make_link(pps=rev_pps, delay=0.01, queue=200, name="rev")}
    reverse = {"through": ("rev",), "up": ("fwd",)} if wire else {}
    return Topology(links, {"through": ("fwd",), "up": ("rev",)},
                    default_path="through", reverse_paths=reverse)


class TestReversePathQueueing:
    def run_through(self, topo, upload_rate):
        specs = [FlowSpec(ExternalRateController(50.0), path="through",
                          keep_packets=True)]
        if upload_rate:
            specs.append(FlowSpec(ExternalRateController(upload_rate),
                                  path="up"))
        sim = Simulation(topo, specs, duration=6.0, seed=30)
        record = sim.run_all()[0]
        return record, sim.flows[0]

    def test_idle_reverse_link_is_almost_pure_propagation(self):
        # Allow forward + ack serialization (~1.5 ms here) but no queueing.
        record, flow = self.run_through(asym_topology(), upload_rate=0.0)
        assert record.mean_rtt == pytest.approx(flow.base_rtt, rel=0.10)
        assert all(p.ack_queue_delay == 0.0 for p in flow.packets
                   if p.ack_time is not None)

    def test_loaded_reverse_link_delays_acks(self):
        """Ack delay strictly exceeds pure propagation when the reverse
        link carries competing data -- the physically-impossible-before
        regime this PR opens."""
        # Uploads at 100 pps into the 50 pps reverse link: its queue is
        # permanently deep, and through-flow acks wait in it.
        record, flow = self.run_through(asym_topology(), upload_rate=100.0)
        acked = [p for p in flow.packets if p.ack_time is not None]
        assert acked and any(p.ack_queue_delay > 0.0 for p in acked)
        assert record.mean_rtt > 1.5 * flow.base_rtt
        # The inflation is *reverse-path* queueing: the forward link
        # (1000 pps vs a 50 pps sender) never queues.
        assert all(p.queue_delay == pytest.approx(0.0, abs=1e-6)
                   for p in acked)

    def test_pure_propagation_twin_unaffected_by_reverse_load(self):
        record_wired, _ = self.run_through(asym_topology(), upload_rate=100.0)
        record_twin, flow = self.run_through(asym_topology(wire=False),
                                             upload_rate=100.0)
        assert record_twin.mean_rtt == pytest.approx(flow.base_rtt, rel=0.10)
        assert record_wired.mean_rtt > 1.5 * record_twin.mean_rtt

    def test_ack_path_delay_shows_up_in_mean_rtt_only_when_wired(self):
        quiet, _ = self.run_through(asym_topology(), upload_rate=0.0)
        loaded, _ = self.run_through(asym_topology(), upload_rate=100.0)
        assert loaded.mean_rtt > quiet.mean_rtt + 0.01
