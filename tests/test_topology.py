"""Tests for the topology layer: live topologies, specs, builders, and
multi-bottleneck simulation semantics (per-flow paths and RTTs)."""

import numpy as np
import pytest

from repro.netsim.link import Link
from repro.netsim.network import FlowSpec, Simulation
from repro.netsim.sender import ExternalRateController
from repro.netsim.topology import (
    LinkDef,
    PathDef,
    Topology,
    TopologySpec,
    chain,
    dumbbell,
    parking_lot,
)
from repro.netsim.traces import ConstantTrace


def make_link(pps=100.0, delay=0.02, queue=50, loss=0.0, seed=0, name=""):
    return Link(ConstantTrace(pps), delay=delay, queue_size=queue,
                loss_rate=loss, rng=np.random.default_rng(seed), name=name)


class TestLiveTopology:
    def test_single_path_wraps_link_list(self):
        links = [make_link(delay=0.01), make_link(delay=0.02)]
        topo = Topology.single_path(links)
        path = topo.path()
        assert path.links == tuple(links)
        assert path.base_rtt == pytest.approx(0.06)
        assert path.return_delay == pytest.approx(0.03)

    def test_parking_lot_paths(self):
        links = [make_link(delay=0.01), make_link(delay=0.02)]
        topo = Topology.parking_lot(links)
        assert set(topo.paths) == {"through", "cross0", "cross1"}
        assert topo.default_path == "through"
        assert topo.path("cross1").links == (links[1],)
        assert topo.path("cross1").base_rtt == pytest.approx(0.04)
        assert topo.path("through").base_rtt == pytest.approx(0.06)

    def test_asymmetric_return_delay(self):
        topo = Topology({"a": make_link(delay=0.01)}, {"p": ("a",)},
                        return_delays={"p": 0.05})
        assert topo.path("p").base_rtt == pytest.approx(0.06)

    def test_unknown_path_and_link_rejected(self):
        with pytest.raises(KeyError, match="unknown link"):
            Topology({"a": make_link()}, {"p": ("a", "b")})
        topo = Topology({"a": make_link()}, {"p": ("a",)})
        with pytest.raises(KeyError, match="unknown path"):
            topo.path("q")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Topology({}, {"p": ("a",)})
        with pytest.raises(ValueError):
            Topology({"a": make_link()}, {})
        with pytest.raises(ValueError, match="no links"):
            Topology({"a": make_link()}, {"p": ()})


class TestTopologySpec:
    def test_builders_shape(self):
        assert len(dumbbell().links) == 1
        c = chain(3, bandwidth_mbps=(10.0, 20.0, 30.0))
        assert [ld.bandwidth_mbps for ld in c.links] == [10.0, 20.0, 30.0]
        assert c.path().links == ("hop0", "hop1", "hop2")
        p = parking_lot(2)
        assert p.path_names() == ("through", "cross0", "cross1")
        assert p.default_path == "through"

    def test_per_hop_broadcast_length_checked(self):
        with pytest.raises(ValueError, match="2 entries for 3 hops"):
            chain(3, bandwidth_mbps=(10.0, 20.0))

    def test_parking_lot_needs_two_hops(self):
        with pytest.raises(ValueError):
            parking_lot(1)

    def test_duplicate_and_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate link names"):
            TopologySpec(name="t", links=(LinkDef("a"), LinkDef("a")),
                         paths=(PathDef("p", ("a",)),))
        with pytest.raises(ValueError, match="unknown"):
            TopologySpec(name="t", links=(LinkDef("a"),),
                         paths=(PathDef("p", ("a", "zz")),))
        with pytest.raises(ValueError, match="default path"):
            TopologySpec(name="t", links=(LinkDef("a"),),
                         paths=(PathDef("p", ("a",)),), default_path="q")

    def test_path_helpers(self):
        spec = parking_lot(2, bandwidth_mbps=(8.0, 16.0), delay_ms=(10.0, 5.0))
        assert spec.path_one_way_ms("through") == pytest.approx(15.0)
        assert spec.path_rtt_s("cross1") == pytest.approx(0.01)
        assert spec.path_bottleneck_mbps("through") == 8.0
        assert spec.path_bottleneck_mbps("cross1") == 16.0

    def test_build_is_deterministic_and_sized(self):
        spec = parking_lot(2, bandwidth_mbps=12.0, delay_ms=10.0,
                           loss_rate=0.1)
        a, b = spec.build(seed=5), spec.build(seed=5)
        assert list(a.links) == ["hop0", "hop1"]
        # BDP-relative buffer against the longest path through the link
        # (the 40 ms through-path RTT, not the hop's own 20 ms).
        pps = 12.0 * 1e6 / (1500 * 8)
        assert a.links["hop0"].queue_size == int(round(pps * 0.04))
        # Same seed, same loss RNG stream.
        draws_a = [a.links["hop0"].rng.random() for _ in range(5)]
        draws_b = [b.links["hop0"].rng.random() for _ in range(5)]
        assert draws_a == draws_b

    def test_build_resolves_named_traces(self):
        spec = dumbbell(trace="fig1-step")
        link = spec.build().links["hop0"]
        assert type(link.trace).__name__ == "StepTrace"

    def test_queue_packets_overrides_bdp(self):
        spec = dumbbell(queue_packets=7)
        assert spec.build().links["hop0"].queue_size == 7


class TestSimulationOverTopology:
    def test_per_flow_base_rtt(self):
        links = [make_link(delay=0.01, seed=1), make_link(delay=0.02, seed=2)]
        topo = Topology.parking_lot(links)
        sim = Simulation(topo, [
            FlowSpec(ExternalRateController(50.0), path="through"),
            FlowSpec(ExternalRateController(50.0), path="cross1"),
        ], duration=2.0, seed=3)
        assert sim.flows[0].base_rtt == pytest.approx(0.06)
        assert sim.flows[1].base_rtt == pytest.approx(0.04)
        # Engine-level default-path RTT is the topology's default path.
        assert sim.base_rtt == pytest.approx(0.06)

    def test_unknown_flow_path_rejected(self):
        topo = Topology.single_path([make_link()])
        with pytest.raises(KeyError, match="unknown path"):
            Simulation(topo, [FlowSpec(ExternalRateController(1.0),
                                       path="nope")], duration=1.0)

    def test_cross_traffic_only_contends_on_its_hop(self):
        """Cross flows on different hops do not share any queue."""
        links = [make_link(pps=100.0, delay=0.01, seed=4, name="a"),
                 make_link(pps=100.0, delay=0.01, seed=5, name="b")]
        topo = Topology.parking_lot(links)
        sim = Simulation(topo, [
            FlowSpec(ExternalRateController(90.0), path="cross0"),
            FlowSpec(ExternalRateController(90.0), path="cross1"),
        ], duration=10.0, seed=6)
        r0, r1 = sim.run_all()
        # Each flow has its 100 pps hop to itself: no loss, full rate.
        assert r0.loss_rate == 0.0 and r1.loss_rate == 0.0
        assert r0.mean_throughput_pps == pytest.approx(90.0, rel=0.05)
        assert r1.mean_throughput_pps == pytest.approx(90.0, rel=0.05)

    def test_through_flow_contends_on_every_hop(self):
        """A through flow shares each queue with that hop's cross flow."""
        links = [make_link(pps=100.0, delay=0.01, queue=20, seed=7),
                 make_link(pps=100.0, delay=0.01, queue=20, seed=8)]
        topo = Topology.parking_lot(links)
        sim = Simulation(topo, [
            FlowSpec(ExternalRateController(100.0), path="through"),
            FlowSpec(ExternalRateController(100.0), path="cross0"),
            FlowSpec(ExternalRateController(100.0), path="cross1"),
        ], duration=20.0, seed=9)
        through, c0, c1 = sim.run_all()
        # Every hop is overloaded (through + cross offer 200 pps at 100
        # pps capacity), so everyone sees loss and nobody exceeds a
        # fair-ish share; the through flow pays on both queues.
        assert through.loss_rate > 0.2
        assert through.mean_throughput_pps < 70.0
        total0 = through.mean_throughput_pps + c0.mean_throughput_pps
        assert total0 == pytest.approx(100.0, rel=0.1)

    def test_multihop_drop_notice_uses_path_timing(self):
        """Loss notices honour accumulated wire timing per path.

        One packet through two links; the second link random-drops it.
        The notice must reflect the true cursor: queue+service+delay of
        both links plus the return propagation -- not the old
        ``now + base_rtt + queue_delay`` shortcut (0.12 here).
        """
        a = make_link(pps=100.0, delay=0.01, queue=100, seed=10)
        b = make_link(pps=50.0, delay=0.05, queue=100, loss=1.0 - 1e-12,
                      seed=11)
        times = []

        class Recorder(ExternalRateController):
            def on_loss(self, flow, packet, now):
                times.append(now)

        sim = Simulation([a, b], [FlowSpec(Recorder(0.5))], duration=1.0,
                         seed=12)
        sim.run()
        # depart(a) = 0.01 service + 0.01 delay = 0.02;
        # depart(b) = 0.02 + 0.02 service + 0.05 delay = 0.09;
        # notice = 0.09 + return delay 0.06 = 0.15.
        assert times and times[0] == pytest.approx(0.15, abs=1e-9)

    def test_stop_time_mi_accounting_not_inflated(self):
        """Regression: acks draining after stop_time must not be
        crammed into an MI clamped at stop_time.

        200 pps into a 50 pps link with a deep buffer, stopping at 1 s:
        ~150 packets are still queued at the stop and their acks arrive
        until ~4 s.  Pre-fix, the final MI ended at 1.0 s while
        counting those acks, inflating flow throughput ~4x above link
        capacity.
        """
        link = make_link(pps=50.0, delay=0.01, queue=10**6, seed=13)
        sim = Simulation(link, [FlowSpec(ExternalRateController(200.0),
                                         stop_time=1.0)],
                         duration=8.0, seed=13)
        record = sim.run_all()[0]
        final = record.records[-1]
        assert final.end > 1.5  # extends to the true last ack
        assert final.throughput_pps <= 50.0 * 1.05
        assert record.mean_throughput_pps <= 50.0 * 1.05
        # Everything sent was eventually accounted.
        flow = sim.flows[0]
        assert flow.total_acked + flow.total_lost + flow.inflight == flow.total_sent

    def test_legacy_link_list_equivalent_to_single_path_topology(self):
        def run(arg):
            sim = Simulation(arg, [FlowSpec(ExternalRateController(80.0))],
                             duration=5.0, seed=14)
            rec = sim.run_all()[0]
            return (rec.mean_throughput_pps, rec.mean_rtt, rec.loss_rate)

        links1 = [make_link(seed=15), make_link(seed=16, delay=0.01)]
        links2 = [make_link(seed=15), make_link(seed=16, delay=0.01)]
        assert run(links1) == run(Topology.single_path(links2))
