"""Tests for repro.rl.distributions against closed forms and scipy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.rl.distributions import Categorical, DiagGaussian


class TestDiagGaussianLogProb:
    def test_matches_scipy(self):
        mean = np.array([[0.3, -1.0]])
        log_std = np.array([0.2, -0.4])
        action = np.array([[0.5, 0.5]])
        ours = DiagGaussian.log_prob(action, mean, log_std)[0]
        ref = (stats.norm.logpdf(0.5, 0.3, np.exp(0.2))
               + stats.norm.logpdf(0.5, -1.0, np.exp(-0.4)))
        assert ours == pytest.approx(ref)

    @settings(max_examples=25, deadline=None)
    @given(mean=st.floats(-3, 3), log_std=st.floats(-2, 1), action=st.floats(-5, 5))
    def test_matches_scipy_property(self, mean, log_std, action):
        ours = DiagGaussian.log_prob(np.array([[action]]), np.array([[mean]]),
                                     np.array([log_std]))[0]
        ref = stats.norm.logpdf(action, mean, np.exp(log_std))
        assert ours == pytest.approx(ref, rel=1e-9, abs=1e-9)

    def test_peak_at_mean(self):
        log_std = np.array([0.0])
        at_mean = DiagGaussian.log_prob(np.array([[1.0]]), np.array([[1.0]]), log_std)
        off_mean = DiagGaussian.log_prob(np.array([[2.0]]), np.array([[1.0]]), log_std)
        assert at_mean[0] > off_mean[0]

    def test_batch_shape(self):
        mean = np.zeros((7, 2))
        out = DiagGaussian.log_prob(np.zeros((7, 2)), mean, np.zeros(2))
        assert out.shape == (7,)


class TestDiagGaussianGrads:
    def test_mean_gradient_numeric(self):
        mean = np.array([[0.1, -0.2]])
        log_std = np.array([0.3, 0.1])
        action = np.array([[1.0, 0.5]])
        d_mean, d_log_std = DiagGaussian.log_prob_grads(action, mean, log_std)
        eps = 1e-6
        for j in range(2):
            m_plus = mean.copy()
            m_plus[0, j] += eps
            m_minus = mean.copy()
            m_minus[0, j] -= eps
            numeric = (DiagGaussian.log_prob(action, m_plus, log_std)[0]
                       - DiagGaussian.log_prob(action, m_minus, log_std)[0]) / (2 * eps)
            assert d_mean[0, j] == pytest.approx(numeric, rel=1e-5)

    def test_log_std_gradient_numeric(self):
        mean = np.array([[0.1]])
        log_std = np.array([-0.3])
        action = np.array([[0.7]])
        _, d_log_std = DiagGaussian.log_prob_grads(action, mean, log_std)
        eps = 1e-6
        numeric = (DiagGaussian.log_prob(action, mean, log_std + eps)[0]
                   - DiagGaussian.log_prob(action, mean, log_std - eps)[0]) / (2 * eps)
        assert d_log_std[0, 0] == pytest.approx(numeric, rel=1e-5)


class TestDiagGaussianEntropy:
    def test_standard_normal(self):
        ref = stats.norm.entropy(0.0, 1.0)
        assert DiagGaussian.entropy(np.zeros(1)) == pytest.approx(float(ref))

    def test_sums_over_dims(self):
        single = DiagGaussian.entropy(np.array([0.5]))
        double = DiagGaussian.entropy(np.array([0.5, 0.5]))
        assert double == pytest.approx(2 * single)

    def test_entropy_grad_is_one(self):
        np.testing.assert_array_equal(
            DiagGaussian.entropy_grad_log_std(np.array([0.3, -1.0])), [1.0, 1.0])

    def test_entropy_increases_with_std(self):
        assert (DiagGaussian.entropy(np.array([1.0]))
                > DiagGaussian.entropy(np.array([0.0])))


class TestDiagGaussianSampling:
    def test_sample_statistics(self):
        rng = np.random.default_rng(0)
        mean = np.full((20000, 1), 2.0)
        log_std = np.array([np.log(0.5)])
        samples = DiagGaussian.sample(mean, log_std, rng)
        assert samples.mean() == pytest.approx(2.0, abs=0.02)
        assert samples.std() == pytest.approx(0.5, abs=0.02)

    def test_deterministic_with_seed(self):
        a = DiagGaussian.sample(np.zeros((3, 1)), np.zeros(1), np.random.default_rng(5))
        b = DiagGaussian.sample(np.zeros((3, 1)), np.zeros(1), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestDiagGaussianKL:
    def test_zero_for_identical(self):
        kl = DiagGaussian.kl(np.array([[1.0]]), np.array([0.3]),
                             np.array([[1.0]]), np.array([0.3]))
        assert kl[0] == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_different(self):
        kl = DiagGaussian.kl(np.array([[0.0]]), np.array([0.0]),
                             np.array([[1.0]]), np.array([0.0]))
        assert kl[0] == pytest.approx(0.5)  # (mu diff)^2 / (2 sigma^2)


class TestCategorical:
    def test_softmax_sums_to_one(self):
        probs = Categorical.softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probs.sum() == pytest.approx(1.0)

    def test_softmax_stable_with_large_logits(self):
        probs = Categorical.softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_prob(self):
        logits = np.array([[0.0, np.log(3.0)]])  # probs 0.25, 0.75
        lp = Categorical.log_prob(np.array([1]), logits)
        assert lp[0] == pytest.approx(np.log(0.75))

    def test_entropy_uniform_is_max(self):
        uniform = Categorical.entropy(np.array([[0.0, 0.0, 0.0]]))[0]
        skewed = Categorical.entropy(np.array([[10.0, 0.0, 0.0]]))[0]
        assert uniform == pytest.approx(np.log(3))
        assert skewed < uniform

    def test_sample_distribution(self):
        rng = np.random.default_rng(1)
        logits = np.repeat(np.array([[np.log(0.2), np.log(0.8)]]), 10000, axis=0)
        samples = Categorical.sample(logits, rng)
        assert samples.mean() == pytest.approx(0.8, abs=0.02)

    def test_sample_shape(self):
        rng = np.random.default_rng(2)
        out = Categorical.sample(np.zeros((5, 3)), rng)
        assert out.shape == (5,)
        assert set(out) <= {0, 1, 2}
