"""Tests for the parallel scenario runner and its on-disk result cache."""

import numpy as np
import pytest

from repro.eval.metrics import jain_index_series
from repro.eval.parallel import ParallelRunner, ResultCache, ResultTable
from repro.eval.scenarios import FlowDef, Scenario, ScenarioSuite
from repro.eval.runner import EvalNetwork

NET = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=10.0, buffer_bdp=1.0)

#: 24 scenarios of heuristic schemes -- small enough for CI, large
#: enough to exercise sharding.
SUITE = ScenarioSuite(name="unit", lineups=("cubic", "vegas", "bbr"),
                      bandwidths_mbps=(6.0, 12.0), losses=(0.0, 0.01),
                      seeds=(0, 1), duration=1.5)


def _flat(outcome):
    return [(r.scenario.name, rec.mean_throughput_pps, rec.mean_rtt,
             rec.loss_rate)
            for r in outcome for rec in r.records]


class TestParallelRunner:
    def test_parallel_matches_serial(self, tmp_path):
        serial = ParallelRunner(n_workers=1, use_cache=False)
        parallel = ParallelRunner(n_workers=2, use_cache=False)
        assert _flat(serial.run(SUITE)) == _flat(parallel.run(SUITE))

    def test_cache_round_trip_and_speedup(self, tmp_path):
        runner = ParallelRunner(n_workers=2, cache_dir=tmp_path)
        first = runner.run(SUITE)
        assert first.cache_hits == 0 and first.cache_misses == len(first) == 24
        second = runner.run(SUITE)
        assert second.cache_hits == 24 and second.cache_misses == 0
        # The acceptance bar is >= 2x; in practice cache reads are
        # orders of magnitude faster than simulating.
        assert second.elapsed < first.elapsed / 2
        assert _flat(first) == _flat(second)

    def test_cached_records_preserve_monitor_intervals(self, tmp_path):
        scenario = Scenario(name="mi", network=NET, duration=4.0, seed=2,
                            flows=(FlowDef("cubic"), FlowDef("vegas", start=1.0)))
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        fresh = runner.run([scenario]).results[0].records
        cached = runner.run([scenario]).results[0].records
        assert len(cached[0].records) == len(fresh[0].records) > 0
        s_fresh, s_cached = fresh[0].records[3], cached[0].records[3]
        assert s_fresh == s_cached
        np.testing.assert_allclose(jain_index_series(cached),
                                   jain_index_series(fresh))

    def test_single_scenario_and_list_inputs(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = SUITE.expand()[0]
        assert len(runner.run(scenario)) == 1
        assert len(runner.run([scenario, scenario])) == 2

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = Scenario(name="c", network=NET, flows=("cubic",), duration=1.0)
        runner.run([scenario])
        path = runner.cache._path(scenario.fingerprint())
        path.write_text("{not json")
        outcome = runner.run([scenario])
        assert outcome.cache_misses == 1  # silently recomputed

    def test_version_mismatch_is_a_miss(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = Scenario(name="v", network=NET, flows=("cubic",), duration=1.0)
        runner.run([scenario])
        path = runner.cache._path(scenario.fingerprint())
        path.write_text(path.read_text().replace('"version": "', '"version": "stale-'))
        assert runner.run([scenario]).cache_misses == 1

    def test_records_for(self, tmp_path):
        runner = ParallelRunner(n_workers=1, use_cache=False)
        outcome = runner.run(ScenarioSuite(name="rf", lineups=("cubic",),
                                           duration=1.0))
        assert outcome.records_for("rf/cubic")[0].scheme
        with pytest.raises(KeyError):
            outcome.records_for("nope")

    def test_cache_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        runner.run(ScenarioSuite(name="cc", lineups=("cubic", "vegas"),
                                 duration=1.0))
        assert cache.clear() == 2
        assert cache.clear() == 0


class TestSweepCompat:
    def test_sweep_schemes_accepts_duplicate_schemes(self):
        from repro.eval.sweeps import sweep_schemes
        result = sweep_schemes(("cubic", "cubic"), "bandwidth", (6.0,),
                               duration=1.0, seed=0)
        assert result.utilization.shape == (2, 1)
        # Same scheme, same seed: both line-ups simulate identically.
        np.testing.assert_allclose(result.utilization[0], result.utilization[1])


class TestResultTable:
    def _table(self):
        runner = ParallelRunner(n_workers=1, use_cache=False)
        return runner.run(ScenarioSuite(
            name="t", lineups=("cubic", "vegas"),
            bandwidths_mbps=(6.0, 12.0), duration=1.5)).table

    def test_rows_and_filter(self):
        table = self._table()
        assert len(table) == 4
        cubic = table.filter(scheme="cubic")
        assert len(cubic) == 2
        assert all(r["label"] == "cubic" for r in cubic)
        assert len(table.filter(scheme="cubic", bandwidth_mbps=6.0)) == 1

    def test_values_and_mean(self):
        table = self._table()
        assert table.values("utilization").shape == (4,)
        assert 0.0 <= table.mean("utilization", scheme="cubic") <= 1.0

    def test_pivot(self):
        rows, cols, matrix = self._table().pivot(
            "label", "bandwidth_mbps", "throughput_pps")
        assert rows == ["cubic", "vegas"] and cols == [6.0, 12.0]
        assert matrix.shape == (2, 2) and np.all(np.isfinite(matrix))

    def test_format_is_printable(self):
        text = self._table().format()
        assert "scenario" in text and "cubic" in text
