"""Tests for the parallel scenario runner and its on-disk result cache."""

import numpy as np
import pytest

from repro.eval.metrics import jain_index_series
from repro.eval.parallel import (
    ParallelRunner,
    ResultCache,
    ResultTable,
    ScenarioError,
)
from repro.eval.scenarios import ChurnSchedule, FlowDef, Scenario, ScenarioSuite
from repro.eval.runner import EvalNetwork
from repro.netsim.topology import parking_lot

NET = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=10.0, buffer_bdp=1.0)

#: 24 scenarios of heuristic schemes -- small enough for CI, large
#: enough to exercise sharding.
SUITE = ScenarioSuite(name="unit", lineups=("cubic", "vegas", "bbr"),
                      bandwidths_mbps=(6.0, 12.0), losses=(0.0, 0.01),
                      seeds=(0, 1), duration=1.5)


def _flat(outcome):
    return [(r.scenario.name, rec.mean_throughput_pps, rec.mean_rtt,
             rec.loss_rate)
            for r in outcome for rec in r.records]


class TestParallelRunner:
    def test_parallel_matches_serial(self, tmp_path):
        serial = ParallelRunner(n_workers=1, use_cache=False)
        parallel = ParallelRunner(n_workers=2, use_cache=False)
        assert _flat(serial.run(SUITE)) == _flat(parallel.run(SUITE))

    def test_cache_round_trip_and_speedup(self, tmp_path):
        runner = ParallelRunner(n_workers=2, cache_dir=tmp_path)
        first = runner.run(SUITE)
        assert first.cache_hits == 0 and first.cache_misses == len(first) == 24
        second = runner.run(SUITE)
        assert second.cache_hits == 24 and second.cache_misses == 0
        # The acceptance bar is >= 2x; in practice cache reads are
        # orders of magnitude faster than simulating.
        assert second.elapsed < first.elapsed / 2
        assert _flat(first) == _flat(second)

    def test_cached_records_preserve_monitor_intervals(self, tmp_path):
        scenario = Scenario(name="mi", network=NET, duration=4.0, seed=2,
                            flows=(FlowDef("cubic"), FlowDef("vegas", start=1.0)))
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        fresh = runner.run([scenario]).results[0].records
        cached = runner.run([scenario]).results[0].records
        assert len(cached[0].records) == len(fresh[0].records) > 0
        s_fresh, s_cached = fresh[0].records[3], cached[0].records[3]
        assert s_fresh == s_cached
        np.testing.assert_allclose(jain_index_series(cached),
                                   jain_index_series(fresh))

    def test_single_scenario_and_list_inputs(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = SUITE.expand()[0]
        assert len(runner.run(scenario)) == 1
        assert len(runner.run([scenario, scenario])) == 2

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = Scenario(name="c", network=NET, flows=("cubic",), duration=1.0)
        runner.run([scenario])
        path = runner.cache._path(scenario.fingerprint())
        path.write_text("{not json")
        outcome = runner.run([scenario])
        assert outcome.cache_misses == 1  # silently recomputed

    def test_version_mismatch_is_a_miss(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = Scenario(name="v", network=NET, flows=("cubic",), duration=1.0)
        runner.run([scenario])
        path = runner.cache._path(scenario.fingerprint())
        path.write_text(path.read_text().replace('"version": "', '"version": "stale-'))
        assert runner.run([scenario]).cache_misses == 1

    def test_records_for(self, tmp_path):
        runner = ParallelRunner(n_workers=1, use_cache=False)
        outcome = runner.run(ScenarioSuite(name="rf", lineups=("cubic",),
                                           duration=1.0))
        assert outcome.records_for("rf/cubic")[0].scheme
        with pytest.raises(KeyError):
            outcome.records_for("nope")

    def test_cache_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        runner.run(ScenarioSuite(name="cc", lineups=("cubic", "vegas"),
                                 duration=1.0))
        assert cache.clear() == 2
        assert cache.clear() == 0


#: A parking-lot grid with churning cross traffic -- the
#: multi-bottleneck acceptance shape: >= 2 bottlenecks, staggered and
#: on-off arrival/departure schedules, all driven through suite axes.
MULTIHOP_SUITE = ScenarioSuite(
    name="mh",
    lineups={"bbr-through": (FlowDef("bbr", path="through"),
                             FlowDef("cubic", path="cross0", label="c0"),
                             FlowDef("cubic", path="cross1", label="c1"))},
    topologies=(parking_lot(2, bandwidth_mbps=10.0, delay_ms=8.0),),
    churns=(None, ChurnSchedule("staggered", gap=2.0, skip=1),
            ChurnSchedule("on-off", gap=2.0, on_time=3.0, skip=1)),
    seeds=(0, 1), duration=6.0)


class TestMultihopChurn:
    def test_parallel_matches_serial_bit_identical(self):
        serial = ParallelRunner(n_workers=1, use_cache=False)
        parallel = ParallelRunner(n_workers=2, use_cache=False)
        assert _flat(serial.run(MULTIHOP_SUITE)) == _flat(parallel.run(MULTIHOP_SUITE))

    def test_cache_round_trip(self, tmp_path):
        runner = ParallelRunner(n_workers=2, cache_dir=tmp_path)
        first = runner.run(MULTIHOP_SUITE)
        assert first.cache_misses == len(MULTIHOP_SUITE) == 6
        second = runner.run(MULTIHOP_SUITE)
        assert second.cache_hits == 6
        assert _flat(first) == _flat(second)

    def test_rows_expose_topology_path_and_churn(self):
        scenarios = [s for s in MULTIHOP_SUITE.expand() if s.seed == 0][:2]
        outcome = ParallelRunner(n_workers=1, use_cache=False).run(scenarios)
        rows = outcome.table.rows
        assert {r["topology"] for r in rows} == {"parking-lot2"}
        assert {r["path"] for r in rows} == {"through", "cross0", "cross1"}
        assert {r["churn"] for r in rows} == {None, "staggered-g2-s1"}

    def test_rows_report_path_axes_not_superseded_network(self):
        """Topology rows carry what the flow's path saw: the default
        path resolved by name, path bottleneck/RTT, no scalar buffer --
        not the inert single-link network axes."""
        scenario = Scenario(
            name="rp", network=EvalNetwork(bandwidth_mbps=99.0, one_way_ms=1.0),
            topology=parking_lot(2, bandwidth_mbps=(10.0, 16.0), delay_ms=8.0,
                                 loss_rate=(0.1, 0.0)),
            flows=(FlowDef("cubic"),                      # default path
                   FlowDef("cubic", path="cross1")),
            duration=1.0)
        rows = ParallelRunner(n_workers=1, use_cache=False).run(
            [scenario]).table.rows
        through, cross = rows
        assert through["path"] == "through"  # default path resolved
        assert through["bandwidth_mbps"] == 10.0 and cross["bandwidth_mbps"] == 16.0
        assert through["rtt_ms"] == pytest.approx(32.0)
        assert cross["rtt_ms"] == pytest.approx(16.0)
        assert through["loss"] == pytest.approx(0.1) and cross["loss"] == 0.0
        assert through["buffer"] is None
        assert not any(r["bandwidth_mbps"] == 99.0 for r in rows)

    def test_churn_windows_respected_in_records(self):
        outcome = ParallelRunner(n_workers=1, use_cache=False).run(
            MULTIHOP_SUITE)
        # The on-off cell: cross1 is only active in [2, 5).
        result = next(r for r in outcome
                      if r.scenario.churn is not None
                      and r.scenario.churn.kind == "on-off"
                      and r.scenario.seed == 0)
        cross1 = result.records[2]
        assert cross1.records[0].start >= 2.0
        assert all(s.end <= 6.0 for s in cross1.records)


def _failing_suite():
    return ScenarioSuite(name="bad", lineups=("cubic", "no-such-scheme",
                                              "vegas"), duration=1.0)


class TestFailureHandling:
    def test_serial_failure_names_the_scenario(self):
        runner = ParallelRunner(n_workers=1, use_cache=False)
        with pytest.raises(ScenarioError, match="bad/no-such-scheme"):
            runner.run(_failing_suite())

    def test_parallel_failure_names_the_scenario(self):
        runner = ParallelRunner(n_workers=2, use_cache=False)
        with pytest.raises(ScenarioError, match="no-such-scheme"):
            runner.run(_failing_suite())

    def test_non_abort_run_completes_and_caches_good_cells(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        with pytest.raises(ScenarioError):
            runner.run(_failing_suite())
        # Both healthy cells were executed and cached despite the
        # failure in the middle of the suite.
        good = [s for s in _failing_suite().expand()
                if s.lineup != "no-such-scheme"]
        assert all(s.fingerprint() in runner.cache for s in good)

    def test_early_abort_serial_stops_at_first_failure(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path,
                                early_abort=True)
        with pytest.raises(ScenarioError, match="no-such-scheme"):
            runner.run(_failing_suite())
        # The cell *after* the failure never ran.
        vegas = next(s for s in _failing_suite().expand()
                     if s.lineup == "vegas")
        assert vegas.fingerprint() not in runner.cache

    def test_early_abort_parallel_raises(self):
        runner = ParallelRunner(n_workers=2, use_cache=False,
                                early_abort=True)
        with pytest.raises(ScenarioError):
            runner.run(_failing_suite())

    def test_cached_cells_unaffected_by_failures(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        good = ScenarioSuite(name="bad", lineups=("cubic", "vegas"),
                             duration=1.0)
        runner.run(good)
        with pytest.raises(ScenarioError):
            runner.run(_failing_suite())
        outcome = runner.run(good)
        assert outcome.cache_hits == 2


class TestSweepCompat:
    def test_sweep_schemes_accepts_duplicate_schemes(self):
        from repro.eval.sweeps import sweep_schemes
        result = sweep_schemes(("cubic", "cubic"), "bandwidth", (6.0,),
                               duration=1.0, seed=0)
        assert result.utilization.shape == (2, 1)
        # Same scheme, same seed: both line-ups simulate identically.
        np.testing.assert_allclose(result.utilization[0], result.utilization[1])


class TestResultTable:
    def _table(self):
        runner = ParallelRunner(n_workers=1, use_cache=False)
        return runner.run(ScenarioSuite(
            name="t", lineups=("cubic", "vegas"),
            bandwidths_mbps=(6.0, 12.0), duration=1.5)).table

    def test_rows_and_filter(self):
        table = self._table()
        assert len(table) == 4
        cubic = table.filter(scheme="cubic")
        assert len(cubic) == 2
        assert all(r["label"] == "cubic" for r in cubic)
        assert len(table.filter(scheme="cubic", bandwidth_mbps=6.0)) == 1

    def test_values_and_mean(self):
        table = self._table()
        assert table.values("utilization").shape == (4,)
        assert 0.0 <= table.mean("utilization", scheme="cubic") <= 1.0

    def test_pivot(self):
        rows, cols, matrix = self._table().pivot(
            "label", "bandwidth_mbps", "throughput_pps")
        assert rows == ["cubic", "vegas"] and cols == [6.0, 12.0]
        assert matrix.shape == (2, 2) and np.all(np.isfinite(matrix))

    def test_format_is_printable(self):
        text = self._table().format()
        assert "scenario" in text and "cubic" in text
