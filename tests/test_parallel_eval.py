"""Tests for the parallel scenario runner and its on-disk result cache."""

import numpy as np
import pytest

from repro.eval.metrics import jain_index_series
from repro.eval.parallel import (
    ParallelRunner,
    ResultCache,
    ResultTable,
    ScenarioError,
)
from repro.eval.scenarios import ChurnSchedule, FlowDef, Scenario, ScenarioSuite
from repro.eval.runner import EvalNetwork
from repro.netsim.topology import dumbbell_asymmetric, parking_lot

NET = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=10.0, buffer_bdp=1.0)

#: 24 scenarios of heuristic schemes -- small enough for CI, large
#: enough to exercise sharding.
SUITE = ScenarioSuite(name="unit", lineups=("cubic", "vegas", "bbr"),
                      bandwidths_mbps=(6.0, 12.0), losses=(0.0, 0.01),
                      seeds=(0, 1), duration=1.5)


def _flat(outcome):
    return [(r.scenario.name, rec.mean_throughput_pps, rec.mean_rtt,
             rec.loss_rate)
            for r in outcome for rec in r.records]


class TestParallelRunner:
    def test_parallel_matches_serial(self, tmp_path):
        serial = ParallelRunner(n_workers=1, use_cache=False)
        parallel = ParallelRunner(n_workers=2, use_cache=False)
        assert _flat(serial.run(SUITE)) == _flat(parallel.run(SUITE))

    def test_cache_round_trip_and_speedup(self, tmp_path):
        runner = ParallelRunner(n_workers=2, cache_dir=tmp_path)
        first = runner.run(SUITE)
        assert first.cache_hits == 0 and first.cache_misses == len(first) == 24
        second = runner.run(SUITE)
        assert second.cache_hits == 24 and second.cache_misses == 0
        # The acceptance bar is >= 2x; in practice cache reads are
        # orders of magnitude faster than simulating.
        assert second.elapsed < first.elapsed / 2
        assert _flat(first) == _flat(second)

    def test_cached_records_preserve_monitor_intervals(self, tmp_path):
        scenario = Scenario(name="mi", network=NET, duration=4.0, seed=2,
                            flows=(FlowDef("cubic"), FlowDef("vegas", start=1.0)))
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        fresh = runner.run([scenario]).results[0].records
        cached = runner.run([scenario]).results[0].records
        assert len(cached[0].records) == len(fresh[0].records) > 0
        s_fresh, s_cached = fresh[0].records[3], cached[0].records[3]
        assert s_fresh == s_cached
        np.testing.assert_allclose(jain_index_series(cached),
                                   jain_index_series(fresh))

    def test_single_scenario_and_list_inputs(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = SUITE.expand()[0]
        assert len(runner.run(scenario)) == 1
        assert len(runner.run([scenario, scenario])) == 2

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = Scenario(name="c", network=NET, flows=("cubic",), duration=1.0)
        runner.run([scenario])
        path = runner.cache._path(scenario.fingerprint())
        path.write_text("{not json")
        outcome = runner.run([scenario])
        assert outcome.cache_misses == 1  # silently recomputed

    def test_version_mismatch_is_a_miss(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = Scenario(name="v", network=NET, flows=("cubic",), duration=1.0)
        runner.run([scenario])
        path = runner.cache._path(scenario.fingerprint())
        path.write_text(path.read_text().replace('"version": "', '"version": "stale-'))
        assert runner.run([scenario]).cache_misses == 1

    def test_records_for(self, tmp_path):
        runner = ParallelRunner(n_workers=1, use_cache=False)
        outcome = runner.run(ScenarioSuite(name="rf", lineups=("cubic",),
                                           duration=1.0))
        assert outcome.records_for("rf/cubic")[0].scheme
        with pytest.raises(KeyError):
            outcome.records_for("nope")

    def test_cache_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        runner.run(ScenarioSuite(name="cc", lineups=("cubic", "vegas"),
                                 duration=1.0))
        assert cache.clear() == 2
        assert cache.clear() == 0


class TestCacheEviction:
    def _fill(self, cache, n):
        scenarios = ScenarioSuite(
            name="ev", lineups=("cubic",), duration=0.5,
            seeds=tuple(range(n))).expand()
        for i, s in enumerate(scenarios):
            cache.put(s.fingerprint(), s.name, [])
        return [s.fingerprint() for s in scenarios]

    def test_put_evicts_oldest_beyond_cap(self, tmp_path):
        import os
        cache = ResultCache(tmp_path, max_bytes=10**9)
        prints = self._fill(cache, 6)
        # Age the entries oldest-first, then shrink the cap to ~3 files.
        for i, fp in enumerate(prints):
            os.utime(cache._path(fp), (1000.0 + i, 1000.0 + i))
        size = cache._path(prints[0]).stat().st_size
        cache.max_bytes = 3 * size + size // 2
        cache.put("f" * 64, "extra", [])
        survivors = {p.stem for p in tmp_path.glob("*.json")}
        # The oldest-touched entries were evicted first.
        assert prints[0] not in survivors and prints[1] not in survivors
        assert ("f" * 64) in survivors

    def test_get_touches_mtime_lru(self, tmp_path):
        import os
        cache = ResultCache(tmp_path, max_bytes=10**9)
        prints = self._fill(cache, 4)
        for i, fp in enumerate(prints):
            os.utime(cache._path(fp), (1000.0 + i, 1000.0 + i))
        assert cache.get(prints[0]) is not None  # hit rejuvenates entry 0
        size = cache._path(prints[0]).stat().st_size
        removed = cache.prune(max_bytes=2 * size + size // 2)
        assert removed == 2
        survivors = {p.stem for p in tmp_path.glob("*.json")}
        assert prints[0] in survivors  # kept: recently used
        assert prints[1] not in survivors and prints[2] not in survivors

    def test_prune_noop_under_cap_and_unbounded(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10**9)
        self._fill(cache, 3)
        assert cache.prune() == 0
        cache.max_bytes = 0  # unbounded: eviction disabled
        assert cache.prune() == 0
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_runner_passes_cap_through(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path,
                                cache_max_bytes=123456)
        assert runner.cache.max_bytes == 123456

    def test_env_var_sets_default_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE_MAX_MB", "1.5")
        assert ResultCache(tmp_path).max_bytes == 1_500_000


#: A parking-lot grid with churning cross traffic -- the
#: multi-bottleneck acceptance shape: >= 2 bottlenecks, staggered and
#: on-off arrival/departure schedules, all driven through suite axes.
MULTIHOP_SUITE = ScenarioSuite(
    name="mh",
    lineups={"bbr-through": (FlowDef("bbr", path="through"),
                             FlowDef("cubic", path="cross0", label="c0"),
                             FlowDef("cubic", path="cross1", label="c1"))},
    topologies=(parking_lot(2, bandwidth_mbps=10.0, delay_ms=8.0),),
    churns=(None, ChurnSchedule("staggered", gap=2.0, skip=1),
            ChurnSchedule("on-off", gap=2.0, on_time=3.0, skip=1)),
    seeds=(0, 1), duration=6.0)


class TestMultihopChurn:
    def test_parallel_matches_serial_bit_identical(self):
        serial = ParallelRunner(n_workers=1, use_cache=False)
        parallel = ParallelRunner(n_workers=2, use_cache=False)
        assert _flat(serial.run(MULTIHOP_SUITE)) == _flat(parallel.run(MULTIHOP_SUITE))

    def test_cache_round_trip(self, tmp_path):
        runner = ParallelRunner(n_workers=2, cache_dir=tmp_path)
        first = runner.run(MULTIHOP_SUITE)
        assert first.cache_misses == len(MULTIHOP_SUITE) == 6
        second = runner.run(MULTIHOP_SUITE)
        assert second.cache_hits == 6
        assert _flat(first) == _flat(second)

    def test_rows_expose_topology_path_and_churn(self):
        scenarios = [s for s in MULTIHOP_SUITE.expand() if s.seed == 0][:2]
        outcome = ParallelRunner(n_workers=1, use_cache=False).run(scenarios)
        rows = outcome.table.rows
        assert {r["topology"] for r in rows} == {"parking-lot2"}
        assert {r["path"] for r in rows} == {"through", "cross0", "cross1"}
        assert {r["churn"] for r in rows} == {None, "staggered-g2-s1"}

    def test_rows_report_path_axes_not_superseded_network(self):
        """Topology rows carry what the flow's path saw: the default
        path resolved by name, path bottleneck/RTT, no scalar buffer --
        not the inert single-link network axes."""
        scenario = Scenario(
            name="rp", network=EvalNetwork(bandwidth_mbps=99.0, one_way_ms=1.0),
            topology=parking_lot(2, bandwidth_mbps=(10.0, 16.0), delay_ms=8.0,
                                 loss_rate=(0.1, 0.0)),
            flows=(FlowDef("cubic"),                      # default path
                   FlowDef("cubic", path="cross1")),
            duration=1.0)
        rows = ParallelRunner(n_workers=1, use_cache=False).run(
            [scenario]).table.rows
        through, cross = rows
        assert through["path"] == "through"  # default path resolved
        assert through["bandwidth_mbps"] == 10.0 and cross["bandwidth_mbps"] == 16.0
        assert through["rtt_ms"] == pytest.approx(32.0)
        assert cross["rtt_ms"] == pytest.approx(16.0)
        assert through["loss"] == pytest.approx(0.1) and cross["loss"] == 0.0
        assert through["buffer"] is None
        assert not any(r["bandwidth_mbps"] == 99.0 for r in rows)

    def test_churn_windows_respected_in_records(self):
        outcome = ParallelRunner(n_workers=1, use_cache=False).run(
            MULTIHOP_SUITE)
        # The on-off cell: cross1 is only active in [2, 5).
        result = next(r for r in outcome
                      if r.scenario.churn is not None
                      and r.scenario.churn.kind == "on-off"
                      and r.scenario.seed == 0)
        cross1 = result.records[2]
        assert cross1.records[0].start >= 2.0
        assert all(s.end <= 6.0 for s in cross1.records)


#: The reverse-path acceptance grid: an asymmetric dumbbell where the
#: download's acks share the skinny uplink with CUBIC uploads that
#: restart periodically -- wired cells paired with their
#: pure-propagation twins, across two seeds.
REVERSE_SUITE = ScenarioSuite(
    name="rev",
    lineups={"dl+ul": (FlowDef("bbr", path="through", label="dl"),
                       FlowDef("cubic", path="reverse", label="ul"))},
    topologies=(dumbbell_asymmetric(12.0, delay_ms=8.0),),
    reverse_paths=(None, {"through": None, "reverse": None}),
    churns=(None, ChurnSchedule("on-off", gap=1.0, on_time=2.5, period=4.0,
                                skip=1)),
    seeds=(0, 1), duration=6.0)


class TestReversePathDeterminism:
    def test_parallel_matches_serial_bit_identical(self):
        serial = ParallelRunner(n_workers=1, use_cache=False)
        parallel = ParallelRunner(n_workers=2, use_cache=False)
        assert _flat(serial.run(REVERSE_SUITE)) == _flat(parallel.run(REVERSE_SUITE))

    def test_cache_round_trip(self, tmp_path):
        runner = ParallelRunner(n_workers=2, cache_dir=tmp_path)
        first = runner.run(REVERSE_SUITE)
        assert first.cache_misses == len(REVERSE_SUITE) == 8
        second = runner.run(REVERSE_SUITE)
        assert second.cache_hits == 8
        assert _flat(first) == _flat(second)

    def test_wired_cells_cost_rtt_twins_do_not(self):
        outcome = ParallelRunner(n_workers=2, use_cache=False).run(
            REVERSE_SUITE)
        wired, twin = [], []
        for result in outcome:
            dl_rtt = result.records[0].mean_rtt
            is_twin = "prop" in (result.scenario.name.split("rev=")[1]
                                 .split("/")[0])
            (twin if is_twin else wired).append(dl_rtt)
        assert min(wired) > max(twin)


def _failing_suite():
    return ScenarioSuite(name="bad", lineups=("cubic", "no-such-scheme",
                                              "vegas"), duration=1.0)


class TestFailureHandling:
    def test_serial_failure_names_the_scenario(self):
        runner = ParallelRunner(n_workers=1, use_cache=False)
        with pytest.raises(ScenarioError, match="bad/no-such-scheme"):
            runner.run(_failing_suite())

    def test_parallel_failure_names_the_scenario(self):
        runner = ParallelRunner(n_workers=2, use_cache=False)
        with pytest.raises(ScenarioError, match="no-such-scheme"):
            runner.run(_failing_suite())

    def test_non_abort_run_completes_and_caches_good_cells(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        with pytest.raises(ScenarioError):
            runner.run(_failing_suite())
        # Both healthy cells were executed and cached despite the
        # failure in the middle of the suite.
        good = [s for s in _failing_suite().expand()
                if s.lineup != "no-such-scheme"]
        assert all(s.fingerprint() in runner.cache for s in good)

    def test_early_abort_serial_stops_at_first_failure(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path,
                                early_abort=True)
        with pytest.raises(ScenarioError, match="no-such-scheme"):
            runner.run(_failing_suite())
        # The cell *after* the failure never ran.
        vegas = next(s for s in _failing_suite().expand()
                     if s.lineup == "vegas")
        assert vegas.fingerprint() not in runner.cache

    def test_early_abort_parallel_raises(self):
        runner = ParallelRunner(n_workers=2, use_cache=False,
                                early_abort=True)
        with pytest.raises(ScenarioError):
            runner.run(_failing_suite())

    def test_cached_cells_unaffected_by_failures(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        good = ScenarioSuite(name="bad", lineups=("cubic", "vegas"),
                             duration=1.0)
        runner.run(good)
        with pytest.raises(ScenarioError):
            runner.run(_failing_suite())
        outcome = runner.run(good)
        assert outcome.cache_hits == 2


class TestSweepCompat:
    def test_sweep_schemes_accepts_duplicate_schemes(self):
        from repro.eval.sweeps import sweep_schemes
        result = sweep_schemes(("cubic", "cubic"), "bandwidth", (6.0,),
                               duration=1.0, seed=0)
        assert result.utilization.shape == (2, 1)
        # Same scheme, same seed: both line-ups simulate identically.
        np.testing.assert_allclose(result.utilization[0], result.utilization[1])


class TestResultTable:
    def _table(self):
        runner = ParallelRunner(n_workers=1, use_cache=False)
        return runner.run(ScenarioSuite(
            name="t", lineups=("cubic", "vegas"),
            bandwidths_mbps=(6.0, 12.0), duration=1.5)).table

    def test_rows_and_filter(self):
        table = self._table()
        assert len(table) == 4
        cubic = table.filter(scheme="cubic")
        assert len(cubic) == 2
        assert all(r["label"] == "cubic" for r in cubic)
        assert len(table.filter(scheme="cubic", bandwidth_mbps=6.0)) == 1

    def test_values_and_mean(self):
        table = self._table()
        assert table.values("utilization").shape == (4,)
        assert 0.0 <= table.mean("utilization", scheme="cubic") <= 1.0

    def test_pivot(self):
        rows, cols, matrix = self._table().pivot(
            "label", "bandwidth_mbps", "throughput_pps")
        assert rows == ["cubic", "vegas"] and cols == [6.0, 12.0]
        assert matrix.shape == (2, 2) and np.all(np.isfinite(matrix))

    def test_format_is_printable(self):
        text = self._table().format()
        assert "scenario" in text and "cubic" in text
