"""Step-able engine core + in-process batched multi-cell execution.

Three guarantees, layered:

* **Stepping is invisible.**  ``SimState.step_until`` / ``step_events``
  partition ``run()``'s event loop arbitrarily without moving a single
  float: handlers stamp ``sim.now`` from the popped event, so slice
  boundaries never leak into the dynamics.
* **Batching is invisible.**  ``BatchRunner`` interleaves N cells in
  one process sharing only frozen assets, so every cell's records are
  bit-identical to running it solo -- pinned here across every perf
  shape and both transit engines, and at the runner level by the
  serial == process-parallel == batched identity grid.
* **Failures stay per cell.**  A mid-batch ``ScenarioError`` surfaces
  the failing cell's name while its batch siblings complete (and
  cache).
"""

import hashlib
import json

import numpy as np
import pytest

from repro.eval.batch import (
    SHARED_IMMUTABLE_ALLOWLIST,
    BatchRunner,
    warm_agent_refs,
)
from repro.eval.parallel import ParallelRunner, ScenarioError, _record_to_json
from repro.eval.perf import PERF_SHAPES, batched_grid_scenarios, perf_scenarios
from repro.eval.scenarios import (
    ChurnSchedule,
    FlowDef,
    Scenario,
    ScenarioSuite,
    build_scenario_simulation,
)
from repro.eval.runner import EvalNetwork
from repro.netsim.network import SimState
from repro.netsim.topology import parking_lot


def records_digest(records) -> str:
    """Full-rows digest (per-MI streams included), as the goldens use."""
    blob = json.dumps([_record_to_json(r) for r in records], sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def solo_digest(scenario) -> str:
    """Reference result: the cell alone, plain ``run_all``."""
    sim = build_scenario_simulation(scenario)
    return records_digest(sim.run_all())


class TestSimStateStepping:
    """The resumable core against the one-shot loop."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return perf_scenarios("single-bottleneck", duration=1.5)[0]

    @pytest.fixture(scope="class")
    def reference(self, scenario):
        sim = build_scenario_simulation(scenario)
        records = sim.run_all()
        return records_digest(records), sim.events_processed

    def test_step_until_slices_are_bit_identical(self, scenario, reference):
        digest, events = reference
        sim = build_scenario_simulation(scenario)
        t = 0.0
        while not sim.state.done:
            t += 0.05
            sim.state.step_until(t)
        assert sim.state.done
        assert records_digest(sim.run_all()) == digest
        assert sim.events_processed == events

    def test_step_events_slices_are_bit_identical(self, scenario, reference):
        digest, events = reference
        sim = build_scenario_simulation(scenario)
        while sim.state.step_events(193):
            pass
        assert sim.state.done
        assert records_digest(sim.run_all()) == digest
        assert sim.events_processed == events

    def test_mixed_slicing_is_bit_identical(self, scenario, reference):
        digest, events = reference
        sim = build_scenario_simulation(scenario)
        sim.state.step_events(77)
        sim.state.step_until(0.4)
        sim.state.step_events(1)
        sim.state.step_until(None)  # the rest in one slice
        assert sim.state.done
        assert records_digest(sim.run_all()) == digest
        assert sim.events_processed == events

    def test_step_until_counts_and_clamps(self, scenario):
        sim = build_scenario_simulation(scenario)
        n = sim.state.step_until(0.25)
        assert n > 0 and sim.events_processed == n
        assert sim.now == 0.25  # idle clock lands on the horizon
        # Horizons past the duration clamp to it.
        sim.state.step_until(sim.duration + 100.0)
        assert sim.state.done and sim.now == sim.duration

    def test_peek_time_is_next_event(self, scenario):
        sim = build_scenario_simulation(scenario)
        first = sim.state.peek_time()
        assert first is not None and first >= 0.0
        sim.state.step_events(1)
        assert sim.state.peek_time() >= first

    def test_run_delegates_to_state(self, scenario):
        sim = build_scenario_simulation(scenario)
        assert isinstance(sim.state, SimState)
        sim.run(0.5)
        assert sim.now == 0.5
        assert not sim.state.done


class TestBatchRunner:
    """Interleaved cells == solo cells, bit for bit."""

    @pytest.mark.parametrize("transit", ("event", "eager"))
    @pytest.mark.parametrize("shape", PERF_SHAPES)
    def test_batched_cells_match_solo_runs(self, shape, transit):
        scenarios = perf_scenarios(shape, transit=transit, duration=0.5)
        cells = BatchRunner(slice_seconds=0.07).run(scenarios)
        assert len(cells) == len(scenarios)
        for scenario, cell in zip(scenarios, cells):
            assert cell.error is None
            assert cell.events > 0 and cell.elapsed > 0.0
            assert records_digest(cell.records) == solo_digest(scenario)

    def test_batched_grid_matches_solo_runs(self):
        scenarios = batched_grid_scenarios(cells=8, duration=0.25)
        cells = BatchRunner().run(scenarios)
        for scenario, cell in zip(scenarios, cells):
            assert cell.error is None
            assert records_digest(cell.records) == solo_digest(scenario)

    def test_cells_share_one_frozen_trace(self):
        scenarios = batched_grid_scenarios(cells=4, duration=0.25)
        cells = BatchRunner().build_cells(scenarios)
        traces = {id(link.trace) for cell in cells
                  for link in cell.sim.links if link.trace is not None}
        walks = [link.trace for cell in cells for link in cell.sim.links
                 if isinstance(getattr(link.trace, "values", None),
                               np.ndarray)]
        assert walks, "grid scenarios must use a named array-backed trace"
        # One shared instance across all cells...
        assert len({id(t) for t in walks}) == 1
        # ...frozen read-only before any cell saw it.
        assert not walks[0].values.flags.writeable
        with pytest.raises(ValueError):
            walks[0].values[0] = 1.0
        assert traces  # sanity: the walk set came from real links

    def test_cells_never_share_generators(self):
        scenarios = batched_grid_scenarios(cells=4, duration=0.25)
        cells = BatchRunner().build_cells(scenarios)
        rngs = []
        for cell in cells:
            sim = cell.sim
            rngs.extend([id(sim.rng), id(sim._hop_rng)])
            rngs.extend(id(link.rng) for link in sim.links
                        if getattr(link, "rng", None) is not None)
        assert len(rngs) == len(set(rngs))

    def test_mid_batch_failure_spares_siblings(self):
        good = perf_scenarios("single-bottleneck", duration=0.3)[0]
        bad = Scenario(name="perf/broken", network=EvalNetwork(),
                       flows=("no-such-scheme",), duration=0.3, suite="perf")
        cells = BatchRunner().run([good, bad, good])
        assert cells[1].error is not None
        assert "no-such-scheme" in cells[1].error
        assert cells[1].records is None
        for cell in (cells[0], cells[2]):
            assert cell.error is None
            assert records_digest(cell.records) == solo_digest(good)

    def test_allowlist_shape(self):
        # The replint isolation rules parse this structure from the AST;
        # keep it literal (name, justification) pairs.
        for name, justification in SHARED_IMMUTABLE_ALLOWLIST:
            assert isinstance(name, str) and name
            assert isinstance(justification, str) and justification.strip()

    def test_warm_agent_refs_accepts_classical_schemes(self):
        # No AgentRefs anywhere: must be a no-op, not a crash.
        warm_agent_refs(perf_scenarios("single-bottleneck", duration=0.3))


def identity_suite(transit: str) -> list[Scenario]:
    """Satellite grid: single-bottleneck, parking lot, and churn cells."""
    churn = ChurnSchedule("on-off", gap=0.5, on_time=1.0, period=1.5, skip=1)
    single = ScenarioSuite(
        name=f"batch-identity-{transit}/single",
        lineups={"duo": ("cubic", "bbr")},
        churns=(None, churn),
        transits=(transit,), duration=2.0, seeds=(3,))
    lot = ScenarioSuite(
        name=f"batch-identity-{transit}/lot",
        lineups={"lot": (FlowDef("copa", path="through", label="through"),
                         FlowDef("cubic", path="cross0", label="cross0"),
                         FlowDef("cubic", path="cross1", label="cross1"))},
        topologies=(parking_lot(2, bandwidth_mbps=10.0, delay_ms=5.0),),
        churns=(None, churn),
        transits=(transit,), duration=2.0, seeds=(3,))
    return single.expand() + lot.expand()


class TestRunnerDispatchIdentity:
    """Serial == process-parallel == batched, per cell (satellite 3)."""

    @pytest.mark.parametrize("transit", ("event", "eager"))
    def test_three_dispatch_modes_agree(self, transit, tmp_path):
        suite = identity_suite(transit)
        runs = {
            "serial": ParallelRunner(n_workers=1, use_cache=False,
                                     batch_size=1).run(suite),
            "parallel": ParallelRunner(n_workers=2, use_cache=False,
                                       batch_size=1).run(suite),
            "batched": ParallelRunner(n_workers=2, use_cache=False,
                                      batch_size=3).run(suite),
        }
        digests = {
            mode: {r.scenario.name: records_digest(r.records)
                   for r in result}
            for mode, result in runs.items()
        }
        assert digests["serial"] == digests["parallel"] == digests["batched"]
        # Per-cell accounting flows through every dispatch mode.
        for result in runs.values():
            for r in result:
                assert r.events > 0 and r.elapsed > 0.0

    def test_result_rows_carry_events_and_wall(self):
        suite = identity_suite("event")
        result = ParallelRunner(n_workers=1, use_cache=False).run(suite)
        for row in result.table:
            assert row["events"] > 0
            assert row["wall_s"] > 0.0

    def test_cached_rows_report_zero_events(self, tmp_path):
        suite = identity_suite("event")
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        first = runner.run(suite)
        assert first.cache_misses == len(first)
        second = runner.run(suite)
        assert second.cache_hits == len(second)
        for row in second.table:
            assert row["events"] == 0 and row["wall_s"] == 0.0
        # Cache-served results are bit-identical to the executed ones.
        for a, b in zip(first, second):
            assert records_digest(a.records) == records_digest(b.records)

    def test_batched_failure_names_cell_and_caches_siblings(self, tmp_path):
        good = perf_scenarios("single-bottleneck", duration=0.3)
        bad = Scenario(name="perf/broken", network=EvalNetwork(),
                       flows=("no-such-scheme",), duration=0.3, suite="perf")
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path,
                                batch_size=4)
        with pytest.raises(ScenarioError) as err:
            runner.run(good + [bad])
        assert err.value.scenario_name == "perf/broken"
        # The healthy batch sibling completed and cached: a re-run of
        # just that cell is a pure hit.
        again = runner.run(good)
        assert again.cache_hits == len(good)

    def test_explicit_batch_size_validates(self):
        with pytest.raises(ValueError):
            ParallelRunner(batch_size=0)

    def test_auto_batch_size_bounds(self):
        runner = ParallelRunner(n_workers=2)
        assert runner._pick_batch_size(1) == 1
        assert runner._pick_batch_size(6) == 1
        assert runner._pick_batch_size(60) == 10
        assert runner._pick_batch_size(10_000) == runner.MAX_AUTO_BATCH
        # early_abort forces cell-per-task dispatch.
        assert ParallelRunner(n_workers=2, early_abort=True,
                              batch_size=8)._pick_batch_size(64) == 1


class TestBatchInterrupts:
    """Interrupts stay surgical under either engine core.

    A deterministic cell exception is a per-cell error (siblings
    complete and cache); a KeyboardInterrupt is *not* a cell failure
    -- it propagates immediately instead of being recorded as an
    error -- and at the runner level the cells completed before the
    interrupt are already cached, so a resumed run only pays for what
    the interrupt cancelled.
    """

    ENGINES = ("reference", "kernel")

    def _cells(self, engine, duration=0.4):
        return ScenarioSuite(
            name=f"interrupt-{engine}", lineups=("cubic", "vegas", "bbr"),
            engines=(engine,), duration=duration).expand()

    def _interrupt_on_second_cell(self, probe_scenario, monkeypatch):
        """Patch the engine's state class so the second *distinct*
        state object to step raises KeyboardInterrupt (strong refs, so
        id-reuse after gc can never alias two states)."""
        state_cls = type(build_scenario_simulation(probe_scenario).state)
        original = state_cls.step_until
        seen: list = []

        def interrupting(self, horizon):
            if not any(s is self for s in seen):
                seen.append(self)
                if len(seen) == 2:
                    raise KeyboardInterrupt
            return original(self, horizon)

        monkeypatch.setattr(state_cls, "step_until", interrupting)
        return state_cls, original

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mid_batch_exception_spares_and_caches_siblings(
            self, engine, tmp_path):
        good = self._cells(engine)
        bad = Scenario(name=f"interrupt-{engine}/broken",
                       network=EvalNetwork(), flows=("no-such-scheme",),
                       duration=0.4, engine=engine)
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path,
                                batch_size=4)
        with pytest.raises(ScenarioError) as err:
            runner.run([good[0], bad, good[1], good[2]])
        assert err.value.scenario_name == f"interrupt-{engine}/broken"
        # Every healthy batch sibling completed and cached despite the
        # failure in the middle of the batch.
        again = runner.run(good)
        assert again.cache_hits == len(good)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_keyboard_interrupt_is_not_a_cell_error(self, engine,
                                                    monkeypatch):
        scenarios = self._cells(engine)
        self._interrupt_on_second_cell(scenarios[0], monkeypatch)
        with pytest.raises(KeyboardInterrupt):
            BatchRunner(slice_seconds=0.1).run(scenarios)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_interrupted_sweep_keeps_completed_cells_cached(
            self, engine, tmp_path, monkeypatch):
        scenarios = self._cells(engine)
        state_cls, original = self._interrupt_on_second_cell(
            scenarios[0], monkeypatch)
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path,
                                batch_size=1)
        with pytest.raises(KeyboardInterrupt):
            runner.run(scenarios)
        assert scenarios[0].fingerprint() in runner.cache
        assert scenarios[1].fingerprint() not in runner.cache
        # Resuming after the interrupt only pays for the cancelled tail.
        monkeypatch.setattr(state_cls, "step_until", original)
        resumed = runner.run(scenarios)
        assert resumed.cache_hits == 1 and resumed.cache_misses == 2
