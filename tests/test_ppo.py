"""Tests for the PPO trainer: loss mechanics and learning on toy tasks."""

import numpy as np
import pytest

from repro.config import DEFAULT_TRAINING
from repro.rl.policy import PreferenceActorCritic
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.rl.rollout import RolloutBuffer


class _TargetBandit:
    """1-step env: reward = -(action - target)^2; tests policy ascent."""

    def __init__(self, target: float, obs_dim: int = 4):
        self.target = target
        self.obs_dim = obs_dim

    def rollout(self, model, steps, rng):
        buf = RolloutBuffer(self.obs_dim, 0, 1, steps)
        obs = np.zeros(self.obs_dim)
        for _ in range(steps):
            action, log_prob, value = model.act(obs, None, rng)
            reward = -float((action[0] - self.target) ** 2)
            buf.add(obs, action, log_prob, value, reward, True)
        return buf


class TestPPOLearnsBandit:
    def test_mean_moves_to_target(self):
        rng = np.random.default_rng(0)
        model = PreferenceActorCritic(obs_dim=4, weight_dim=0, act_dim=1,
                                      hidden_sizes=(8,), rng=rng)
        trainer = PPOTrainer(model, PPOConfig(learning_rate=3e-3, entropy_scale=0.0),
                             rng=np.random.default_rng(1))
        env = _TargetBandit(target=0.7)
        for _ in range(60):
            buf = env.rollout(model, 128, rng)
            trainer.update(buf)
        mean, _ = model.forward(np.zeros((1, 4)), None)
        assert mean[0, 0] == pytest.approx(0.7, abs=0.15)

    def test_negative_target(self):
        rng = np.random.default_rng(2)
        model = PreferenceActorCritic(obs_dim=4, weight_dim=0, act_dim=1,
                                      hidden_sizes=(8,), rng=rng)
        trainer = PPOTrainer(model, PPOConfig(learning_rate=3e-3, entropy_scale=0.0),
                             rng=np.random.default_rng(3))
        env = _TargetBandit(target=-0.5)
        for _ in range(60):
            buf = env.rollout(model, 128, rng)
            trainer.update(buf)
        mean, _ = model.forward(np.zeros((1, 4)), None)
        assert mean[0, 0] == pytest.approx(-0.5, abs=0.15)


class TestPPOMechanics:
    def _setup(self, weight_dim=0):
        model = PreferenceActorCritic(obs_dim=3, weight_dim=weight_dim, act_dim=1,
                                      hidden_sizes=(6,), rng=np.random.default_rng(4))
        trainer = PPOTrainer(model, PPOConfig(), rng=np.random.default_rng(5))
        return model, trainer

    def _buffer(self, model, n=32, weight_dim=0, rng_seed=6):
        rng = np.random.default_rng(rng_seed)
        buf = RolloutBuffer(3, weight_dim, 1, n)
        w = np.full(3, 1 / 3) if weight_dim else None
        for i in range(n):
            obs = rng.normal(size=3)
            action, log_prob, value = model.act(obs, w, rng)
            buf.add(obs, action, log_prob, value, rng.normal(), i == n - 1,
                    weights=w)
        return buf

    def test_update_returns_stats(self):
        model, trainer = self._setup()
        stats = trainer.update(self._buffer(model))
        assert np.isfinite(stats.policy_loss)
        assert np.isfinite(stats.value_loss)
        assert stats.entropy > 0
        assert 0.0 <= stats.clip_fraction <= 1.0

    def test_update_changes_parameters(self):
        model, trainer = self._setup()
        before = model.state_dict()
        trainer.update(self._buffer(model))
        changed = any(not np.allclose(before[k], v)
                      for k, v in model.state_dict().items())
        assert changed

    def test_iteration_counter(self):
        model, trainer = self._setup()
        trainer.update(self._buffer(model))
        trainer.update(self._buffer(model, rng_seed=7))
        assert trainer.iteration == 2

    def test_multiple_buffers_pooled(self):
        model, trainer = self._setup()
        b1 = self._buffer(model, n=16, rng_seed=8)
        b2 = self._buffer(model, n=16, rng_seed=9)
        stats = trainer.update([b1, b2], [0.0, 0.0])
        assert np.isfinite(stats.policy_loss)

    def test_bootstrap_count_mismatch_raises(self):
        model, trainer = self._setup()
        b1 = self._buffer(model, n=8)
        with pytest.raises(ValueError):
            trainer.update([b1], [0.0, 1.0])

    def test_update_multi_averages_objectives(self):
        """update_multi implements the Eq. 6 requirement-replay loss."""
        model, trainer = self._setup(weight_dim=3)
        b1 = self._buffer(model, n=16, weight_dim=3, rng_seed=10)
        b2 = self._buffer(model, n=16, weight_dim=3, rng_seed=11)
        stats = trainer.update_multi([b1, b2])
        assert len(stats) == 2
        assert trainer.iteration == 1

    def test_weighted_model_update(self):
        model, trainer = self._setup(weight_dim=3)
        stats = trainer.update(self._buffer(model, weight_dim=3))
        assert np.isfinite(stats.policy_loss)


class TestPPOConfig:
    def test_from_training_config(self):
        cfg = PPOConfig.from_training_config(DEFAULT_TRAINING)
        assert cfg.gamma == DEFAULT_TRAINING.discount_factor
        assert cfg.clip_epsilon == DEFAULT_TRAINING.clip_epsilon
        assert cfg.learning_rate == DEFAULT_TRAINING.learning_rate

    def test_entropy_decays(self):
        cfg = PPOConfig()
        assert cfg.entropy_coef(0) > cfg.entropy_coef(500) > cfg.entropy_coef(1000)
        assert cfg.entropy_coef(1000) == pytest.approx(cfg.entropy_coef(2000))

    def test_entropy_scaling(self):
        cfg = PPOConfig(entropy_scale=0.5)
        assert cfg.entropy_coef(0) == pytest.approx(0.5)


class TestClippingBehaviour:
    def test_stale_buffer_produces_clipping(self):
        """Re-updating many times on one buffer must trigger the clip."""
        model = PreferenceActorCritic(obs_dim=3, weight_dim=0, act_dim=1,
                                      hidden_sizes=(6,), rng=np.random.default_rng(12))
        trainer = PPOTrainer(model, PPOConfig(learning_rate=5e-3, epochs=1),
                             rng=np.random.default_rng(13))
        rng = np.random.default_rng(14)
        buf = RolloutBuffer(3, 0, 1, 64)
        for i in range(64):
            obs = rng.normal(size=3)
            action, log_prob, value = model.act(obs, None, rng)
            buf.add(obs, action, log_prob, value, rng.normal(), i == 63)
        clip_fractions = [trainer.update(buf).clip_fraction for _ in range(20)]
        assert clip_fractions[-1] > 0.0
