"""Random (wire) drops of acks are real losses on the event engine.

PR 4 made *buffer*-dropped acks real (pending_acks + rto recovery) but
left random wire drops of acks delivered at normal timing -- the
ROADMAP gap this PR closes: a corrupted ack never reaches the sender
either, and a real stack recovers exactly the same way (a later
cumulative ack, or a spurious retransmit timeout).  The eager twin
keeps its frozen delivered-at-normal-timing semantics.
"""

import numpy as np
import pytest

from repro.netsim.link import Link
from repro.netsim.network import FlowSpec, Simulation
from repro.netsim.sender import ExternalRateController
from repro.netsim.topology import Topology
from repro.netsim.traces import ConstantTrace


def lossy_reverse_topology(rev_loss=0.3, rev_queue=500):
    """Fast, loss-free forward link; lossy but deep-buffered reverse
    link (wire drops only -- the buffer never overflows)."""
    links = {
        "fwd": Link(ConstantTrace(1000.0), delay=0.01, queue_size=200,
                    rng=np.random.default_rng(1), name="fwd"),
        "rev": Link(ConstantTrace(500.0), delay=0.01, queue_size=rev_queue,
                    loss_rate=rev_loss, rng=np.random.default_rng(2),
                    name="rev"),
    }
    return Topology(links, {"through": ("fwd",), "up": ("rev",)},
                    default_path="through",
                    reverse_paths={"through": ("rev",), "up": ("fwd",)})


def run_through(topo, duration=8.0, transit="event", stop=float("inf")):
    sim = Simulation(topo, [FlowSpec(ExternalRateController(60.0),
                                     path="through", keep_packets=True,
                                     stop_time=stop)],
                     duration=duration, seed=33, transit=transit)
    sim.run_all()
    return sim.flows[0], sim


class TestWireDroppedAcks:
    def test_wire_drops_park_and_recover(self):
        flow, sim = run_through(lossy_reverse_topology())
        # The reverse buffer is deep: every reverse drop was a wire drop.
        rev = sim.topology.links["rev"]
        assert rev.dropped_random > 50
        assert rev.dropped_buffer == 0
        recovered = [p for p in flow.packets if p.ack_recovered]
        timed_out = [p for p in flow.packets if p.ack_dropped]
        # ~30% of acks are corrupted: most recover via later cumulative
        # acks, the trailing ones surface as retransmit timeouts.
        assert len(recovered) + len(timed_out) > 30
        assert recovered
        # Exact conservation: every packet accounted once.
        assert (flow.total_acked + flow.total_lost + flow.inflight
                == flow.total_sent)
        for p in recovered:
            assert p.ack_time is not None and p.ack_time > p.send_time
        for p in timed_out:
            assert not p.dropped and p.ack_time is None

    def test_trailing_wire_drops_surface_as_rto(self):
        """A sender that stops emitting cannot be rescued by later
        cumulative acks: trailing corrupted acks must time out instead
        of hanging in flight forever."""
        flow, _ = run_through(lossy_reverse_topology(rev_loss=0.5),
                              duration=12.0, stop=4.0)
        assert flow.pending_acks == {}
        assert flow.inflight == 0
        assert flow.total_acked + flow.total_lost == flow.total_sent

    def test_loss_notices_still_never_lost(self):
        """Forward drops must reach the sender as loss events even over
        a randomly-lossy reverse path (a notice rides every later
        cumulative ack, so corruption shows up as timing, not loss)."""
        topo = lossy_reverse_topology(rev_loss=0.3)
        # Squeeze the forward link so it drops (the trace setter keeps
        # the cached rate coherent; queue_size is read live).
        topo.links["fwd"].trace = ConstantTrace(40.0)
        topo.links["fwd"].queue_size = 2
        flow, _ = run_through(topo)
        forward_drops = [p for p in flow.packets if p.dropped]
        assert len(forward_drops) > 50
        assert flow.total_lost >= 0.8 * len(forward_drops)

    def test_eager_twin_keeps_frozen_semantics(self):
        """The comparison twin must not grow ack loss: wire-dropped
        acks stay delivered at normal timing."""
        flow, _ = run_through(lossy_reverse_topology(), transit="eager")
        assert not any(p.ack_recovered or p.ack_dropped
                       for p in flow.packets)
        assert flow.pending_acks == {}
        assert flow.total_acked > 100

    def test_wire_drops_inflate_measured_rtt(self):
        """A recovered ack carries the *recovery* moment (the next
        surviving cumulative ack), not its own would-be arrival, so a
        lossy ack path shows up in the sender's RTT signal even when
        cumulative recovery saves every packet."""
        lossy_flow, _ = run_through(lossy_reverse_topology())
        clean_flow, _ = run_through(lossy_reverse_topology(rev_loss=0.0))

        def mean_rtt(flow):
            rtts = [p.rtt for p in flow.packets if p.rtt is not None]
            return sum(rtts) / len(rtts)

        assert any(p.ack_recovered for p in lossy_flow.packets)
        assert not any(p.ack_recovered for p in clean_flow.packets)
        assert mean_rtt(lossy_flow) > 1.05 * mean_rtt(clean_flow)
