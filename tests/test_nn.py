"""Tests for the numpy neural-network layer (repro.rl.nn).

Backprop correctness is checked against central-difference numerical
gradients, including property-based variants over random shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rl.nn import (
    MLP,
    Dense,
    ReLU,
    Sequential,
    Tanh,
    flatten_params,
    numerical_gradient,
    unflatten_params,
)


def _loss_through(module, x):
    """Scalar loss: sum of squares of module output."""
    y = module.forward(x)
    return 0.5 * float(np.sum(y ** 2))


def _backward_through(module, x):
    y = module.forward(x)
    module.zero_grad()
    module.backward(y)  # d(0.5*sum(y^2))/dy = y
    return {name: p.grad.copy() for name, p in module.parameters().items()}


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 7, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((3, 4)))
        assert out.shape == (3, 7)

    def test_promotes_1d_input(self):
        layer = Dense(4, 2, rng=np.random.default_rng(0))
        assert layer.forward(np.ones(4)).shape == (1, 2)

    def test_linearity(self):
        layer = Dense(3, 3, rng=np.random.default_rng(1))
        x = np.random.default_rng(2).normal(size=(5, 3))
        y1 = layer.forward(2.0 * x) - layer.b.value
        y2 = 2.0 * (layer.forward(x) - layer.b.value)
        np.testing.assert_allclose(y1, y2, atol=1e-12)

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(3)
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(6, 4))
        analytic = _backward_through(layer, x)
        numeric = numerical_gradient(lambda: _loss_through(layer, x), layer.parameters())
        for name in analytic:
            np.testing.assert_allclose(analytic[name], numeric[name], atol=1e-6)

    def test_input_gradient(self):
        rng = np.random.default_rng(4)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(2, 3))
        y = layer.forward(x)
        grad_in = layer.backward(np.ones_like(y))
        # d(sum y)/dx = W summed over outputs
        np.testing.assert_allclose(grad_in, np.ones((2, 2)) @ layer.W.value.T)

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_bad_init_name(self):
        with pytest.raises(ValueError):
            Dense(2, 2, init="bogus")

    def test_grad_accumulates_across_calls(self):
        rng = np.random.default_rng(5)
        layer = Dense(2, 2, rng=rng)
        x = rng.normal(size=(3, 2))
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        g1 = layer.W.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        np.testing.assert_allclose(layer.W.grad, 2 * g1)


class TestActivations:
    def test_tanh_range(self):
        act = Tanh()
        out = act.forward(np.array([-100.0, 0.0, 100.0]))
        np.testing.assert_allclose(out, [-1.0, 0.0, 1.0], atol=1e-9)

    def test_tanh_gradient(self):
        act = Tanh()
        x = np.array([[0.3, -0.7]])
        act.forward(x)
        grad = act.backward(np.ones((1, 2)))
        np.testing.assert_allclose(grad, 1.0 - np.tanh(x) ** 2)

    def test_relu_zeroes_negatives(self):
        act = ReLU()
        np.testing.assert_array_equal(act.forward(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_relu_gradient_mask(self):
        act = ReLU()
        act.forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(act.backward(np.ones((1, 2))), [[0.0, 1.0]])


class TestMLP:
    def test_hidden_structure(self):
        mlp = MLP(10, (64, 32), 1, rng=np.random.default_rng(0))
        widths = [l.W.value.shape for l in mlp.layers if isinstance(l, Dense)]
        assert widths == [(10, 64), (64, 32), (32, 1)]

    def test_forward_shape(self):
        mlp = MLP(5, (8,), 3, rng=np.random.default_rng(0))
        assert mlp.forward(np.zeros((4, 5))).shape == (4, 3)

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(7)
        mlp = MLP(3, (6, 4), 2, rng=rng)
        x = rng.normal(size=(5, 3))
        analytic = _backward_through(mlp, x)
        numeric = numerical_gradient(lambda: _loss_through(mlp, x), mlp.parameters())
        for name in analytic:
            np.testing.assert_allclose(analytic[name], numeric[name],
                                       atol=1e-6, rtol=1e-4)

    @settings(max_examples=10, deadline=None)
    @given(in_dim=st.integers(1, 6), hidden=st.integers(1, 8),
           out_dim=st.integers(1, 4), batch=st.integers(1, 5))
    def test_gradcheck_random_shapes(self, in_dim, hidden, out_dim, batch):
        rng = np.random.default_rng(in_dim * 100 + hidden * 10 + out_dim)
        mlp = MLP(in_dim, (hidden,), out_dim, rng=rng)
        x = rng.normal(size=(batch, in_dim))
        analytic = _backward_through(mlp, x)
        numeric = numerical_gradient(lambda: _loss_through(mlp, x), mlp.parameters())
        for name in analytic:
            np.testing.assert_allclose(analytic[name], numeric[name],
                                       atol=1e-5, rtol=1e-3)

    def test_relu_variant(self):
        mlp = MLP(4, (8,), 2, activation="relu", rng=np.random.default_rng(0))
        assert mlp.forward(np.ones((1, 4))).shape == (1, 2)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(4, (8,), 2, activation="swish")


class TestStateDict:
    def test_roundtrip(self):
        rng = np.random.default_rng(8)
        a = MLP(4, (6,), 2, rng=rng)
        b = MLP(4, (6,), 2, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_state_dict_is_copy(self):
        mlp = MLP(2, (3,), 1, rng=np.random.default_rng(0))
        state = mlp.state_dict()
        first_key = next(iter(state))
        state[first_key] += 100.0
        np.testing.assert_array_less(np.abs(mlp.parameters()[first_key].value), 50.0)

    def test_missing_key_raises(self):
        mlp = MLP(2, (3,), 1)
        state = mlp.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(ValueError, match="missing"):
            mlp.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        mlp = MLP(2, (3,), 1)
        state = mlp.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((99, 99))
        with pytest.raises(ValueError, match="shape"):
            mlp.load_state_dict(state)


class TestFlatten:
    def test_roundtrip(self):
        mlp = MLP(3, (4,), 2, rng=np.random.default_rng(1))
        flat = flatten_params(mlp.parameters())
        twin = MLP(3, (4,), 2, rng=np.random.default_rng(2))
        unflatten_params(twin.parameters(), flat)
        np.testing.assert_allclose(flatten_params(twin.parameters()), flat)

    def test_size_mismatch_raises(self):
        mlp = MLP(3, (4,), 2)
        with pytest.raises(ValueError):
            unflatten_params(mlp.parameters(), np.zeros(7))

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_flat_length(self, in_dim, out_dim):
        layer = Dense(in_dim, out_dim)
        flat = flatten_params(layer.parameters())
        assert flat.size == in_dim * out_dim + out_dim


class TestSequential:
    def test_zero_grad_clears(self):
        seq = Sequential(Dense(2, 3), Tanh(), Dense(3, 1))
        x = np.ones((2, 2))
        seq.forward(x)
        seq.backward(np.ones((2, 1)))
        seq.zero_grad()
        for p in seq.parameters().values():
            assert np.all(p.grad == 0.0)

    def test_parameter_names_unique(self):
        seq = Sequential(Dense(2, 2), Dense(2, 2))
        names = list(seq.parameters())
        assert len(names) == len(set(names)) == 4
