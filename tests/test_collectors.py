"""Collector parity: Serial/Vector/Process agree on shapes and handle
both preference-conditioned and unconditioned models (incl. the
``weights=None`` path and the no-finished-episode reward fallback)."""

import numpy as np
import pytest

from repro.config import DEFAULT_TRAINING, NetworkParams
from repro.core.agent import MoccAgent
from repro.rl.collect import BALANCED_OBJECTIVE, evaluate_policy, resolve_objective
from repro.rl.parallel import EnvSpec, ProcessCollector, SerialCollector, VectorCollector

SPEC = EnvSpec(params=NetworkParams(3.0, 20.0, 200, 0.0), max_steps=16, seed=2)
WEIGHTS = [0.5, 0.3, 0.2]


def _collectors():
    return [("serial", SerialCollector(SPEC), 1),
            ("vector", VectorCollector(SPEC, n_envs=2), 2),
            ("process", ProcessCollector(SPEC, n_workers=2), 2)]


def _conditioned():
    return MoccAgent(DEFAULT_TRAINING, weight_dim=3).model


def _unconditioned():
    return MoccAgent(DEFAULT_TRAINING, weight_dim=0).model


class TestResolveObjective:
    def test_none_defaults_to_balanced_for_unconditioned(self):
        np.testing.assert_allclose(resolve_objective(None, conditioned=False),
                                   BALANCED_OBJECTIVE)

    def test_none_rejected_for_conditioned(self):
        with pytest.raises(ValueError, match="preference-conditioned"):
            resolve_objective(None, conditioned=True)

    def test_passthrough(self):
        np.testing.assert_allclose(resolve_objective(WEIGHTS, True), WEIGHTS)

    def test_evaluate_policy_accepts_none_for_unconditioned(self):
        reward = evaluate_policy(SPEC.build(), _unconditioned(), None,
                                 np.random.default_rng(0))
        assert np.isfinite(reward)


class TestCollectorParity:
    @pytest.mark.parametrize("model_kind", ["conditioned", "unconditioned"])
    def test_buffer_shapes_and_bootstraps(self, model_kind):
        conditioned = model_kind == "conditioned"
        weights = WEIGHTS if conditioned else None
        for name, collector, n_shards in _collectors():
            model = _conditioned() if conditioned else _unconditioned()
            try:
                buffers, boots, reward = collector.collect(
                    model, weights, 32, np.random.default_rng(0))
                assert len(buffers) == len(boots) == n_shards, name
                for buffer in buffers:
                    assert buffer.size == 32 // n_shards, name
                    assert buffer.obs.shape[1] == collector.spec.build().observation_dim
                    # Unconditioned models carry no weight columns.
                    assert (buffer.weights is not None) == conditioned, name
                assert all(np.isfinite(b) for b in boots), name
                assert np.isfinite(reward), name
            finally:
                collector.close()

    def test_conditioned_model_requires_weights_everywhere(self):
        for name, collector, _ in _collectors():
            try:
                with pytest.raises(ValueError, match="preference-conditioned"):
                    collector.collect(_conditioned(), None, 8,
                                      np.random.default_rng(0))
            finally:
                collector.close()


class TestVectorRewardFallback:
    def test_partial_episodes_extrapolated_to_horizon(self):
        # per_env = 16 // 2 = 8 < max_steps = 16: no episode can finish,
        # so the fallback must extrapolate per-step reward to the
        # horizon rather than reporting 8-step partials as episodes.
        collector = VectorCollector(SPEC, n_envs=2)
        buffers, _, reward = collector.collect(
            _conditioned(), WEIGHTS, 16, np.random.default_rng(0))
        assert not any(b.dones[:b.size].any() for b in buffers)
        partial_totals = [b.rewards[:b.size].sum() for b in buffers]
        expected = float(np.mean([t * SPEC.max_steps / 8 for t in partial_totals]))
        assert reward == pytest.approx(expected)
        # Sanity: the estimate is about double the raw partial mean.
        assert reward == pytest.approx(2.0 * np.mean(partial_totals))

    def test_serial_fallback_also_extrapolated(self):
        # The extrapolation lives in shared collect_rollout, so Serial
        # (and Process workers) agree with Vector on reward scale when
        # the rollout is shorter than an episode.
        collector = SerialCollector(SPEC)
        buffers, _, reward = collector.collect(
            _conditioned(), WEIGHTS, 8, np.random.default_rng(0))
        assert not buffers[0].dones[:8].any()
        partial = buffers[0].rewards[:8].sum()
        assert reward == pytest.approx(partial * SPEC.max_steps / 8)

    def test_finished_episodes_not_extrapolated(self):
        # per_env = 32 > max_steps = 16: every env finishes at least one
        # episode and the mean must come from completed episodes only.
        collector = VectorCollector(SPEC, n_envs=2)
        buffers, _, reward = collector.collect(
            _conditioned(), WEIGHTS, 64, np.random.default_rng(0))
        finished = []
        for buffer in buffers:
            total = 0.0
            for r, done in zip(buffer.rewards[:buffer.size],
                               buffer.dones[:buffer.size]):
                total += r
                if done:
                    finished.append(total)
                    total = 0.0
        assert finished
        assert reward == pytest.approx(float(np.mean(finished)))
