"""Tests for the MOCC core: objectives, agent, library API, online parts."""

import numpy as np
import pytest

from repro.config import DEFAULT_TRAINING
from repro.core.agent import MoccAgent, MoccController, PolicyRateController
from repro.core.library import MOCC, NetworkStatus
from repro.core.objectives import (
    OnlineEstimator,
    components_from_measurements,
    dynamic_reward,
)
from repro.core.online import AdaptationTrace, RequirementReplay
from repro.netsim.env import RewardComponents


class TestObjectives:
    def test_components_basic(self):
        comps = components_from_measurements(
            throughput=50.0, latency=0.08, loss_rate=0.1,
            capacity=100.0, base_latency=0.04)
        assert comps.o_thr == pytest.approx(0.5)
        assert comps.o_lat == pytest.approx(0.5)
        assert comps.o_loss == pytest.approx(0.9)

    def test_components_clipped(self):
        comps = components_from_measurements(200.0, 0.01, 0.0, 100.0, 0.04)
        assert comps.o_thr == 1.0
        assert comps.o_lat == 1.0

    def test_dynamic_reward_eq2(self):
        comps = RewardComponents(1.0, 0.5, 0.8)
        r = dynamic_reward(comps, [0.6, 0.3, 0.1])
        assert r == pytest.approx(0.6 + 0.15 + 0.08)

    def test_estimator_tracks_max_and_min(self):
        est = OnlineEstimator()
        est.update(50.0, 0.08)
        est.update(80.0, 0.05)
        est.update(60.0, 0.09)
        assert est.capacity == pytest.approx(80.0)
        assert est.base_latency == pytest.approx(0.05)

    def test_estimator_components(self):
        est = OnlineEstimator()
        est.update(100.0, 0.04)
        comps = est.components(throughput=50.0, latency=0.08, loss_rate=0.0)
        assert comps.o_thr == pytest.approx(0.5)
        assert comps.o_lat == pytest.approx(0.5)

    def test_estimator_decay_relaxes(self):
        est = OnlineEstimator(decay=0.1)
        est.update(100.0, 0.04)
        for _ in range(10):
            est.update(50.0, 0.08)
        assert est.capacity < 100.0
        assert est.base_latency > 0.04

    def test_estimator_handles_missing_latency(self):
        est = OnlineEstimator()
        comps = est.components(throughput=10.0, latency=None, loss_rate=0.2)
        assert comps.o_lat == 0.0
        assert comps.o_loss == pytest.approx(0.8)


class TestMoccAgent:
    def test_obs_dim_from_config(self):
        agent = MoccAgent(DEFAULT_TRAINING)
        assert agent.obs_dim == 4 * DEFAULT_TRAINING.history_length

    def test_act_deterministic(self):
        agent = MoccAgent(DEFAULT_TRAINING)
        obs = np.zeros(agent.obs_dim)
        rng = np.random.default_rng(0)
        a1 = agent.act(obs, [0.8, 0.1, 0.1], rng, deterministic=True)
        a2 = agent.act(obs, [0.8, 0.1, 0.1], rng, deterministic=True)
        assert a1 == a2

    def test_next_rate_applies_eq1(self):
        agent = MoccAgent(DEFAULT_TRAINING)
        obs = np.zeros(agent.obs_dim)
        rng = np.random.default_rng(0)
        rate = agent.next_rate(100.0, obs, [0.8, 0.1, 0.1], rng)
        assert rate > 0

    def test_save_load_roundtrip(self, tmp_path):
        agent = MoccAgent(DEFAULT_TRAINING)
        path = tmp_path / "agent.npz"
        agent.save(path)
        loaded = MoccAgent.load(path)
        obs = np.ones(agent.obs_dim)
        w = np.array([0.5, 0.3, 0.2])
        rng = np.random.default_rng(1)
        assert (agent.act(obs, w, rng, deterministic=True)
                == loaded.act(obs, w, rng, deterministic=True))

    def test_clone_independent(self):
        agent = MoccAgent(DEFAULT_TRAINING)
        twin = agent.clone()
        twin.model.log_std.value[...] = 9.0
        assert agent.model.log_std.value[0] != 9.0

    def test_single_objective_agent(self):
        agent = MoccAgent(DEFAULT_TRAINING, weight_dim=0)
        obs = np.zeros(agent.obs_dim)
        action = agent.act(obs, None, np.random.default_rng(0))
        assert np.isfinite(action)


class TestPolicyRateController:
    def test_requires_weights_for_conditioned_model(self):
        agent = MoccAgent(DEFAULT_TRAINING)
        with pytest.raises(ValueError):
            PolicyRateController(agent.model, weights=None)

    def test_inference_counting(self):
        from repro.eval.runner import EvalNetwork, run_scheme
        agent = MoccAgent(DEFAULT_TRAINING)
        ctrl = MoccController(agent, [0.8, 0.1, 0.1], initial_rate=50.0)
        net = EvalNetwork(bandwidth_mbps=2.0, one_way_ms=20.0, buffer_bdp=2.0)
        run_scheme(ctrl, net, duration=2.0, seed=1)
        # One inference per monitor interval (2 s / 40 ms = ~50).
        assert 40 <= ctrl.inference_count <= 55


class TestLibraryAPI:
    def _lib(self):
        return MOCC(MoccAgent(DEFAULT_TRAINING), initial_rate=100.0)

    def test_register_validates(self):
        lib = self._lib()
        with pytest.raises(ValueError):
            lib.register([1.0, 0.0, 0.0])
        lib.register([0.5, 0.3, 0.2])

    def test_calls_require_registration(self):
        lib = self._lib()
        with pytest.raises(RuntimeError):
            lib.get_sending_rate()
        with pytest.raises(RuntimeError):
            lib.report_status(NetworkStatus(1, 1, 0, 0.05, 0.1))

    def test_rate_changes_after_status(self):
        lib = self._lib()
        lib.register([0.8, 0.1, 0.1])
        for _ in range(3):
            lib.report_status(NetworkStatus(sent=20, acked=19, lost=1,
                                            mean_rtt=0.05, duration=0.05))
            rate = lib.get_sending_rate()
        assert rate > 0
        assert lib.inference_count == 3

    def test_invalid_duration(self):
        lib = self._lib()
        lib.register([0.5, 0.3, 0.2])
        with pytest.raises(ValueError):
            lib.report_status(NetworkStatus(1, 1, 0, 0.05, 0.0))

    def test_handles_silent_interval(self):
        lib = self._lib()
        lib.register([0.5, 0.3, 0.2])
        lib.report_status(NetworkStatus(sent=0, acked=0, lost=0,
                                        mean_rtt=None, duration=0.1))
        assert lib.get_sending_rate() > 0


class TestRequirementReplay:
    def test_add_and_sample(self):
        pool = RequirementReplay()
        assert pool.add([0.8, 0.1, 0.1])
        assert len(pool) == 1
        w = pool.sample(np.random.default_rng(0))
        np.testing.assert_allclose(w, [0.8, 0.1, 0.1])

    def test_deduplication(self):
        pool = RequirementReplay()
        pool.add([0.8, 0.1, 0.1])
        assert not pool.add([0.8, 0.1, 0.1])
        assert len(pool) == 1

    def test_sample_excludes(self):
        pool = RequirementReplay()
        pool.add([0.8, 0.1, 0.1])
        assert pool.sample(np.random.default_rng(0),
                           exclude=[0.8, 0.1, 0.1]) is None

    def test_empty_sample(self):
        assert RequirementReplay().sample(np.random.default_rng(0)) is None

    def test_uniform_coverage(self):
        pool = RequirementReplay()
        pool.add([0.8, 0.1, 0.1])
        pool.add([0.1, 0.8, 0.1])
        rng = np.random.default_rng(0)
        seen = {tuple(pool.sample(rng)) for _ in range(50)}
        assert len(seen) == 2


class TestAdaptationTrace:
    def test_convergence_iteration(self):
        trace = AdaptationTrace(rewards=[10, 50, 90, 99, 100, 100, 100])
        assert trace.convergence_iteration(smooth=1) == 4

    def test_convergence_with_smoothing(self):
        trace = AdaptationTrace(rewards=[100, 0, 100, 0, 100, 100, 100, 100])
        it = trace.convergence_iteration(smooth=3)
        assert it >= 3

    def test_convergence_smoothing_recentered_on_window_end(self):
        # The reward jumps at iteration 11 (1-based); a smooth-5 window
        # first fully covers the new level over iterations 11-15, so the
        # reported convergence must be 15 -- not 11 shifted left by the
        # convolution's index offset.
        trace = AdaptationTrace(rewards=[0.0] * 10 + [100.0] * 20)
        assert trace.convergence_iteration(smooth=1) == 11
        assert trace.convergence_iteration(smooth=5) == 15

    def test_convergence_never_before_smoothing_window_fills(self):
        trace = AdaptationTrace(rewards=[50.0, 50.0, 50.0, 50.0])
        assert trace.convergence_iteration(smooth=3) == 3

    def test_convergence_smooth_longer_than_trace(self):
        trace = AdaptationTrace(rewards=[1.0, 2.0, 4.0])
        assert trace.convergence_iteration(smooth=10) == 3

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            AdaptationTrace().convergence_iteration()

    def test_retention(self):
        trace = AdaptationTrace(old_marks=[(0, 100.0), (8, 95.0), (16, 97.0)])
        assert trace.old_objective_retention() == pytest.approx(0.95)

    def test_retention_empty(self):
        assert np.isnan(AdaptationTrace().old_objective_retention())
