"""Tests for bandwidth traces (repro.netsim.traces)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.traces import (
    ConstantTrace,
    PiecewiseTrace,
    RandomWalkTrace,
    StepTrace,
    mbps_to_pps,
    pps_to_mbps,
)


class TestUnitConversion:
    def test_mbps_to_pps_1500B(self):
        # 12 Mbps at 1500 B (12000 bit) packets = 1000 pps.
        assert mbps_to_pps(12.0) == pytest.approx(1000.0)

    def test_roundtrip(self):
        assert pps_to_mbps(mbps_to_pps(23.7)) == pytest.approx(23.7)

    @given(st.floats(0.1, 1000.0))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, mbps):
        assert pps_to_mbps(mbps_to_pps(mbps)) == pytest.approx(mbps, rel=1e-12)

    def test_packet_size_scaling(self):
        assert mbps_to_pps(12.0, packet_bytes=3000) == pytest.approx(500.0)


class TestConstantTrace:
    def test_value_everywhere(self):
        t = ConstantTrace(100.0)
        assert t.bandwidth_at(0.0) == 100.0
        assert t.bandwidth_at(1e6) == 100.0
        assert t.max_bandwidth() == 100.0
        assert t.mean_bandwidth(0, 10) == 100.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantTrace(0.0)

    def test_from_mbps(self):
        assert ConstantTrace.from_mbps(12.0).pps == pytest.approx(1000.0)


class TestStepTrace:
    def test_square_wave(self):
        t = StepTrace(low_pps=20.0, high_pps=30.0, period=5.0)
        assert t.bandwidth_at(0.0) == 30.0   # starts high
        assert t.bandwidth_at(4.9) == 30.0
        assert t.bandwidth_at(5.1) == 20.0
        assert t.bandwidth_at(10.1) == 30.0

    def test_start_low(self):
        t = StepTrace(20.0, 30.0, 5.0, start_high=False)
        assert t.bandwidth_at(0.0) == 20.0

    def test_fig1a_settings(self):
        """Fig. 1(a): link oscillates between 20 and 30 Mbps."""
        t = StepTrace.from_mbps(20.0, 30.0, period=10.0)
        values = {t.bandwidth_at(x) for x in np.arange(0, 50, 1.0)}
        assert values == {mbps_to_pps(20.0), mbps_to_pps(30.0)}

    def test_mean_over_full_cycle(self):
        t = StepTrace(10.0, 30.0, 1.0)
        mean = t.mean_bandwidth(0.0, 2.0, samples=2001)
        assert mean == pytest.approx(20.0, rel=0.01)

    def test_mean_uses_true_midpoints(self):
        """Regression: endpoint-inclusive sampling double-weighted both
        regimes of an interval straddling a capacity switch.

        Over one full 100/200 cycle the analytic mean is 150.  Midpoint
        sampling with an even sample count is exact; the old
        ``linspace(t0, t1, samples)`` sampling returned 162.5 here
        (five samples land in the high regime, including both
        endpoints).
        """
        t = StepTrace(low_pps=100.0, high_pps=200.0, period=1.0)
        assert t.mean_bandwidth(0.0, 2.0, samples=8) == pytest.approx(150.0)
        # The few-sample estimate the engine uses per MI (samples=9)
        # stays within one sub-interval's weight of the analytic mean.
        assert t.mean_bandwidth(0.0, 2.0, samples=9) == pytest.approx(
            150.0, rel=0.08)

    def test_mean_midpoints_respect_offset_interval(self):
        # [0.5, 1.5] is half high, half low: analytic mean 150.
        t = StepTrace(low_pps=100.0, high_pps=200.0, period=1.0)
        assert t.mean_bandwidth(0.5, 1.5, samples=10) == pytest.approx(150.0)

    def test_max(self):
        assert StepTrace(10.0, 30.0, 1.0).max_bandwidth() == 30.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            StepTrace(10.0, 30.0, 0.0)


class TestRandomWalkTrace:
    def test_within_bounds(self):
        t = RandomWalkTrace(50.0, 150.0, interval=0.5, horizon=100.0, seed=3)
        for x in np.linspace(0, 100, 500):
            assert 50.0 <= t.bandwidth_at(float(x)) <= 150.0

    def test_deterministic_by_seed(self):
        a = RandomWalkTrace(50.0, 150.0, seed=1)
        b = RandomWalkTrace(50.0, 150.0, seed=1)
        assert a.bandwidth_at(42.0) == b.bandwidth_at(42.0)

    def test_different_seeds_differ(self):
        a = RandomWalkTrace(50.0, 150.0, seed=1)
        b = RandomWalkTrace(50.0, 150.0, seed=2)
        samples = [(a.bandwidth_at(t), b.bandwidth_at(t)) for t in range(100)]
        assert any(x != y for x, y in samples)

    def test_actually_varies(self):
        t = RandomWalkTrace(50.0, 150.0, interval=1.0, step=0.3, seed=0)
        values = {t.bandwidth_at(float(x)) for x in range(50)}
        assert len(values) > 5

    def test_beyond_horizon_clamps(self):
        t = RandomWalkTrace(50.0, 150.0, horizon=10.0, seed=0)
        assert t.bandwidth_at(1e9) == t.bandwidth_at(10.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            RandomWalkTrace(100.0, 50.0)


class TestPiecewiseTrace:
    def test_step_interpolation(self):
        t = PiecewiseTrace([(0.0, 10.0), (5.0, 20.0), (8.0, 5.0)])
        assert t.bandwidth_at(0.0) == 10.0
        assert t.bandwidth_at(4.99) == 10.0
        assert t.bandwidth_at(5.0) == 20.0
        assert t.bandwidth_at(100.0) == 5.0

    def test_before_first_breakpoint(self):
        t = PiecewiseTrace([(1.0, 10.0)])
        assert t.bandwidth_at(0.0) == 10.0

    def test_unsorted_raises(self):
        with pytest.raises(ValueError):
            PiecewiseTrace([(5.0, 1.0), (0.0, 2.0)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            PiecewiseTrace([])

    def test_max(self):
        assert PiecewiseTrace([(0, 3.0), (1, 7.0)]).max_bandwidth() == 7.0
