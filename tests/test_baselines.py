"""Tests for the baseline congestion-control schemes."""

import numpy as np
import pytest

from repro.baselines import BBR, Copa, Cubic, Orca, PCCAllegro, PCCVivace, Vegas
from repro.baselines._pcc_common import TrialTracker
from repro.baselines.aurora import AuroraController, aurora_objective
from repro.baselines.base import SCHEME_REGISTRY, make_controller
from repro.config import DEFAULT_TRAINING
from repro.core.agent import MoccAgent
from repro.eval.runner import EvalNetwork, run_scheme
from repro.netsim.packet import Packet
from repro.netsim.sender import ExternalRateController, Flow

NET = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=15.0, buffer_bdp=1.5)


def _flow_with_srtt(srtt=0.05):
    flow = Flow(flow_id=0, controller=ExternalRateController(100.0))
    flow.srtt = srtt
    flow.min_rtt_seen = srtt * 0.8
    return flow


def _packet(send_time=0.0):
    return Packet(flow_id=0, seq=0, send_time=send_time)


class TestCubicUnit:
    def test_slow_start_doubles_per_rtt(self):
        cubic = Cubic(initial_cwnd=10.0)
        flow = _flow_with_srtt()
        for _ in range(10):  # one ack per cwnd packet
            cubic.on_ack(flow, _packet(), 0.05)
        assert cubic.cwnd(0.05) == pytest.approx(20.0)

    def test_loss_multiplies_by_beta(self):
        cubic = Cubic(initial_cwnd=100.0)
        flow = _flow_with_srtt()
        cubic.on_loss(flow, _packet(), 1.0)
        assert cubic.cwnd(1.0) == pytest.approx(70.0)
        assert cubic.ssthresh == pytest.approx(70.0)

    def test_single_reduction_per_rtt(self):
        cubic = Cubic(initial_cwnd=100.0)
        flow = _flow_with_srtt(srtt=0.1)
        cubic.on_loss(flow, _packet(), 1.0)
        cubic.on_loss(flow, _packet(), 1.01)  # within the same RTT
        assert cubic.cwnd(1.01) == pytest.approx(70.0)

    def test_cwnd_floor(self):
        cubic = Cubic(initial_cwnd=2.0)
        flow = _flow_with_srtt()
        for i in range(5):
            cubic.on_loss(flow, _packet(), float(i))
        assert cubic.cwnd(5.0) >= cubic.min_cwnd

    def test_concave_growth_after_loss(self):
        cubic = Cubic(initial_cwnd=100.0)
        flow = _flow_with_srtt()
        cubic.on_loss(flow, _packet(), 1.0)
        start = cubic.cwnd(1.0)
        for k in range(200):
            cubic.on_ack(flow, _packet(), 1.1 + 0.001 * k)
        assert start < cubic.cwnd(2.0) < 130.0


class TestVegasUnit:
    def test_increases_when_backlog_small(self):
        vegas = Vegas(initial_cwnd=10.0)
        vegas.slow_start = False
        flow = _flow_with_srtt(srtt=0.05)
        flow.min_rtt_seen = 0.05  # rtt == base: zero backlog
        stats = flow.finish_mi(0.5, 100.0, 0.05, 100.0)
        stats_fixed = stats.__class__(**{**stats.__dict__, "mean_rtt": 0.05})
        vegas.on_mi(flow, stats_fixed, 0.5)
        assert vegas.cwnd(0.5) == pytest.approx(11.0)

    def test_decreases_when_backlog_large(self):
        vegas = Vegas(initial_cwnd=50.0)
        vegas.slow_start = False
        flow = _flow_with_srtt()
        flow.min_rtt_seen = 0.05
        stats = flow.finish_mi(0.5, 100.0, 0.05, 100.0)
        congested = stats.__class__(**{**stats.__dict__, "mean_rtt": 0.10})
        vegas.on_mi(flow, congested, 0.5)  # backlog = 50*(0.05/0.10) = 25 > beta
        assert vegas.cwnd(0.5) == pytest.approx(49.0)

    def test_loss_halves(self):
        vegas = Vegas(initial_cwnd=40.0)
        vegas.on_loss(_flow_with_srtt(), _packet(), 1.0)
        assert vegas.cwnd(1.0) == pytest.approx(20.0)

    def test_invalid_alpha_beta(self):
        with pytest.raises(ValueError):
            Vegas(alpha=4.0, beta=2.0)


class TestBBRUnit:
    def test_startup_exits_when_bw_flat(self):
        bbr = BBR(initial_rate=10.0)
        flow = _flow_with_srtt()
        stats = flow.finish_mi(0.1, 100.0, 0.03, 10.0)
        sample = stats.__class__(**{**stats.__dict__, "acked": 10,
                                    "mean_rtt": 0.03, "min_rtt": 0.03})
        for i in range(6):
            bbr.on_mi(flow, sample, 0.1 * (i + 1))
        assert bbr.state in ("DRAIN", "PROBE_BW")

    def test_inflight_cap_is_2bdp(self):
        bbr = BBR(initial_rate=10.0)
        bbr._bw_samples.append(100.0)
        bbr._rtt_samples.append((0.0, 0.05))
        assert bbr.inflight_cap(0.1) == pytest.approx(2 * 100.0 * 0.05)

    def test_pacing_floor(self):
        assert BBR(initial_rate=0.001).pacing_rate(0.0) >= 1.0


class TestCopaUnit:
    def test_slow_start_exits_on_queue(self):
        copa = Copa(initial_cwnd=10.0)
        flow = _flow_with_srtt(srtt=0.05)
        flow.min_rtt_seen = 0.04
        # Ack with a big queueing delay -> slow start should end.
        p = _packet(send_time=0.0)
        copa.on_ack(flow, p.__class__(flow_id=0, seq=0, send_time=0.0), 0.08)
        assert not copa.slow_start or copa._cwnd >= 10.0

    def test_loss_brake(self):
        copa = Copa(initial_cwnd=100.0)
        copa.on_loss(_flow_with_srtt(), _packet(), 1.0)
        assert copa._cwnd == pytest.approx(90.0)
        assert not copa.slow_start

    def test_step_capped_at_one_packet(self):
        copa = Copa(initial_cwnd=2.0, min_cwnd=2.0)
        copa.slow_start = False
        copa._velocity = 16.0
        copa._direction = 1
        flow = _flow_with_srtt(srtt=0.05)
        flow.min_rtt_seen = 0.05
        before = copa._cwnd
        copa.on_ack(flow, _packet(), 0.05)
        assert abs(copa._cwnd - before) <= 1.0 + 1e-9


class TestTrialTracker:
    def test_send_time_attribution(self):
        tracker = TrialTracker()
        t1 = tracker.begin(+1, 100.0, now=0.0, round_id=0)
        t2 = tracker.begin(-1, 90.0, now=1.0, round_id=0)
        early = Packet(flow_id=0, seq=0, send_time=0.5)   # sent during t1
        late = Packet(flow_id=0, seq=1, send_time=1.5)    # sent during t2
        tracker.on_ack(early, now=1.6)   # ack arrives during t2's window
        tracker.on_loss(late)
        assert t1.acked == 1 and t1.lost == 0
        assert t2.acked == 0 and t2.lost == 1

    def test_resolution_grace(self):
        tracker = TrialTracker()
        tracker.begin(+1, 100.0, now=0.0, round_id=0)
        tracker.begin(-1, 90.0, now=1.0, round_id=0)  # closes the first
        assert tracker.pop_resolved(now=1.5, grace=1.0) == []
        resolved = tracker.pop_resolved(now=2.5, grace=1.0)
        assert len(resolved) == 1
        assert resolved[0].sign == +1

    def test_goodput_discounts_loss(self):
        tracker = TrialTracker()
        trial = tracker.begin(+1, 100.0, now=0.0, round_id=0)
        trial.acked, trial.lost = 3, 1
        assert trial.loss_rate == pytest.approx(0.25)
        assert trial.goodput() == pytest.approx(75.0)


class TestPCCBehaviour:
    def test_allegro_climbs_on_clean_link(self):
        record = run_scheme(PCCAllegro(initial_rate=NET.bottleneck_pps / 10),
                            NET, duration=25.0, seed=3)
        assert record.mean_utilization > 0.5

    def test_vivace_climbs_on_clean_link(self):
        record = run_scheme(PCCVivace(initial_rate=NET.bottleneck_pps / 10),
                            NET, duration=25.0, seed=3)
        assert record.mean_utilization > 0.5

    def test_allegro_collapses_beyond_sigmoid_cliff(self):
        """Allegro's utility cuts throughput credit beyond ~5 % loss."""
        lossy = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=15.0,
                            buffer_bdp=1.5, loss_rate=0.10)
        record = run_scheme(PCCAllegro(initial_rate=NET.bottleneck_pps / 4),
                            lossy, duration=20.0, seed=4)
        clean = run_scheme(PCCAllegro(initial_rate=NET.bottleneck_pps / 4),
                           NET, duration=20.0, seed=4)
        assert record.mean_utilization < clean.mean_utilization


class TestRLBaselines:
    def test_aurora_requires_single_objective_model(self):
        with pytest.raises(ValueError):
            AuroraController(MoccAgent(DEFAULT_TRAINING, weight_dim=3))

    def test_aurora_objective_flavours(self):
        np.testing.assert_allclose(aurora_objective("throughput"), [0.8, 0.1, 0.1])
        np.testing.assert_allclose(aurora_objective("latency"), [0.1, 0.8, 0.1])
        with pytest.raises(ValueError):
            aurora_objective("jitter")

    def test_orca_without_model_acts_like_cubic(self):
        orca = Orca(agent=None)
        cubic_record = run_scheme(Cubic(), NET, duration=10.0, seed=5)
        orca_record = run_scheme(orca, NET, duration=10.0, seed=5)
        assert orca_record.mean_utilization == pytest.approx(
            cubic_record.mean_utilization, abs=0.1)
        assert orca.scale == 1.0

    def test_orca_scale_bounded(self):
        agent = MoccAgent(DEFAULT_TRAINING, weight_dim=0)
        orca = Orca(agent=agent, rl_interval=1)
        run_scheme(orca, NET, duration=5.0, seed=6)
        assert Orca.MIN_SCALE <= orca.scale <= Orca.MAX_SCALE
        assert orca.inference_count > 0

    def test_orca_rejects_conditioned_model(self):
        with pytest.raises(ValueError):
            Orca(agent=MoccAgent(DEFAULT_TRAINING, weight_dim=3))


class TestRegistry:
    def test_all_schemes_constructible(self):
        for name in ("cubic", "vegas", "bbr", "copa", "allegro", "vivace"):
            assert make_controller(name) is not None

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_controller("reno")

    def test_registry_lazy_population(self):
        assert len(SCHEME_REGISTRY) == 6


class TestBehaviourMatrix:
    """Cross-scheme sanity: the qualitative Fig. 5 orderings."""

    def test_cubic_fills_buffer_vegas_does_not(self):
        cubic = run_scheme(Cubic(), NET, duration=15.0, seed=7)
        vegas = run_scheme(Vegas(), NET, duration=15.0, seed=7)
        assert cubic.latency_ratio > vegas.latency_ratio

    def test_bbr_robust_to_random_loss_cubic_not(self):
        lossy = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=15.0,
                            buffer_bdp=1.5, loss_rate=0.03)
        bbr = run_scheme(BBR(initial_rate=lossy.bottleneck_pps / 3),
                         lossy, duration=15.0, seed=8)
        cubic = run_scheme(Cubic(), lossy, duration=15.0, seed=8)
        assert bbr.mean_utilization > 2 * cubic.mean_utilization

    def test_all_schemes_loss_free_on_clean_underbuffered_link(self):
        clean = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=15.0, buffer_bdp=4.0)
        for ctrl in (Vegas(), Copa()):
            record = run_scheme(ctrl, clean, duration=10.0, seed=9)
            assert record.loss_rate < 0.05, ctrl.name
