"""Tests for the evaluation harness: metrics, ellipses, CDFs, sweeps."""

import numpy as np
import pytest

from repro.eval.cdf import cdf_at, empirical_cdf, format_cdf_table
from repro.eval.gaussian import sigma_ellipse
from repro.eval.metrics import (
    friendliness_ratio,
    jain_index,
    jain_index_series,
    reward_of_record,
)
from repro.eval.runner import EvalNetwork, run_competition, run_scheme, scheme_factory
from repro.netsim.network import FlowRecord
from repro.netsim.sender import ExternalRateController, MonitorIntervalStats


def _record(thr_pps=50.0, rtt=0.05, stats=None):
    return FlowRecord(flow_id=0, scheme="x", mean_throughput_pps=thr_pps,
                      mean_throughput_mbps=thr_pps * 1500 * 8 / 1e6,
                      mean_utilization=0.5, mean_rtt=rtt, base_rtt=0.04,
                      loss_rate=0.0, records=stats or [])


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_total_unfairness(self):
        assert jain_index([30.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_two_flow_known_value(self):
        # (1+3)^2 / (2*(1+9)) = 16/20
        assert jain_index([1.0, 3.0]) == pytest.approx(0.8)

    def test_empty(self):
        assert jain_index([]) == 1.0

    def test_scale_invariant(self):
        assert jain_index([1, 2, 3]) == pytest.approx(jain_index([10, 20, 30]))


class TestJainSeries:
    def _stats(self, start, acked):
        return MonitorIntervalStats(flow_id=0, start=start, end=start + 0.5,
                                    sent=acked, acked=acked, lost=0, mean_rtt=0.05,
                                    min_rtt=0.05, latency_gradient=0.0,
                                    capacity_pps=100.0, base_rtt=0.04,
                                    packet_bytes=1500, rate_pps=50.0)

    def test_series_windows(self):
        r1 = _record(stats=[self._stats(t, 10) for t in np.arange(0, 4, 0.5)])
        r2 = _record(stats=[self._stats(t, 10) for t in np.arange(0, 4, 0.5)])
        series = jain_index_series([r1, r2], interval=1.0, duration=4.0)
        assert len(series) == 4
        np.testing.assert_allclose(series, 1.0)

    def test_skips_single_flow_windows(self):
        r1 = _record(stats=[self._stats(t, 10) for t in np.arange(0, 4, 0.5)])
        r2 = _record(stats=[self._stats(t, 10) for t in np.arange(2, 4, 0.5)])
        series = jain_index_series([r1, r2], interval=1.0, duration=4.0)
        assert len(series) == 2  # only the overlap windows


class TestFriendliness:
    def test_ratio(self):
        assert friendliness_ratio(_record(30.0), _record(60.0)) == pytest.approx(0.5)

    def test_zero_cubic(self):
        assert friendliness_ratio(_record(30.0), _record(0.0)) == float("inf")


class TestRewardOfRecord:
    def test_weighted_components(self):
        stats = MonitorIntervalStats(flow_id=0, start=0, end=1, sent=50, acked=50,
                                     lost=0, mean_rtt=0.04, min_rtt=0.04,
                                     latency_gradient=0.0, capacity_pps=50.0,
                                     base_rtt=0.04, packet_bytes=1500, rate_pps=50.0)
        record = _record(stats=[stats])
        # Perfect interval: every component is 1 -> reward = sum(w) = 1.
        assert reward_of_record(record, [0.5, 0.3, 0.2]) == pytest.approx(1.0)


class TestSigmaEllipse:
    def test_center(self):
        rng = np.random.default_rng(0)
        pts = rng.normal([5.0, -2.0], [1.0, 0.5], size=(4000, 2))
        e = sigma_ellipse(pts)
        assert e.center[0] == pytest.approx(5.0, abs=0.1)
        assert e.center[1] == pytest.approx(-2.0, abs=0.1)

    def test_axes_match_std(self):
        rng = np.random.default_rng(1)
        pts = rng.normal([0, 0], [2.0, 0.5], size=(8000, 2))
        e = sigma_ellipse(pts)
        assert max(e.axes) == pytest.approx(2.0, rel=0.1)
        assert min(e.axes) == pytest.approx(0.5, rel=0.1)

    def test_contains_center(self):
        e = sigma_ellipse(np.array([[0, 0], [2, 0], [0, 2], [2, 2]]))
        assert e.contains(e.center)

    def test_contour_shape(self):
        e = sigma_ellipse(np.array([[0, 0], [1, 1], [2, 0]]))
        assert e.contour(32).shape == (32, 2)

    def test_single_point(self):
        e = sigma_ellipse(np.array([[3.0, 4.0]]))
        assert e.center == (3.0, 4.0)
        assert e.axes == (0.0, 0.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            sigma_ellipse(np.zeros((4, 3)))


class TestCdf:
    def test_empirical(self):
        x, p = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(x, [1, 2, 3])
        np.testing.assert_allclose(p, [1 / 3, 2 / 3, 1.0])

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == pytest.approx(0.5)
        assert cdf_at([], 1.0) == 0.0

    def test_format_table(self):
        table = format_cdf_table({"a": np.array([1.0, 2.0, 3.0])})
        assert "a" in table and "mean" in table


class TestRunnerIntegration:
    NET = EvalNetwork(bandwidth_mbps=4.0, one_way_ms=10.0, buffer_bdp=1.0)

    def test_run_scheme_heuristic(self):
        record = run_scheme(scheme_factory("cubic", self.NET), self.NET,
                            duration=5.0, seed=1)
        assert record.mean_utilization > 0.5

    def test_scheme_factory_all_heuristics(self):
        for name in ("cubic", "vegas", "bbr", "copa", "allegro", "vivace"):
            controller = scheme_factory(name, self.NET)
            assert controller.kind in ("rate", "window")

    def test_scheme_factory_unknown(self):
        with pytest.raises(ValueError):
            scheme_factory("reno", self.NET)

    def test_mocc_requires_agent(self):
        with pytest.raises(ValueError):
            scheme_factory("mocc", self.NET)

    def test_run_competition_staggered(self):
        controllers = [ExternalRateController(150.0), ExternalRateController(150.0)]
        records = run_competition(controllers, self.NET, duration=8.0,
                                  start_times=[0.0, 4.0], seed=2)
        assert records[0].mean_throughput_pps > 0
        assert records[1].records[0].start >= 4.0

    def test_network_queue_sizing(self):
        net = EvalNetwork(bandwidth_mbps=12.0, one_way_ms=20.0, buffer_bdp=1.0)
        # 1 BDP at 1000 pps, 40 ms RTT = 40 packets.
        assert net.queue_size() == pytest.approx(40, abs=1)

    def test_explicit_queue_overrides(self):
        net = EvalNetwork(queue_packets=123)
        assert net.queue_size() == 123
