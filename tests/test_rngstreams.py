"""The RNG-stream registry: bit-identity with the pre-registry call
sites, derivation disjointness invariants, and the Link fallback.

Every stream in :mod:`repro.netsim.rngstreams` replaced an inline
``np.random.default_rng(...)`` expression; these tests pin that the
registry feeds ``default_rng`` exactly the same entropy, so the
migration cannot have moved a single bit (golden traces check the
end-to-end consequence, this checks the mechanism).
"""

import numpy as np
import pytest

from repro.netsim.link import Link
from repro.netsim.rngstreams import (INDEX_SALT_FLOOR, STREAMS, derive_seed,
                                     stream_rng)


def _same_stream(a, b, n=16):
    return np.array_equal(a.random(n), b.random(n))


class TestBitIdentity:
    """Each stream reproduces its pre-registry inline expression."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 12345])
    def test_sim_pacing_is_raw_seed(self, seed):
        # network.py formerly: np.random.default_rng(seed)
        assert _same_stream(stream_rng("sim.pacing", seed),
                            np.random.default_rng(seed))

    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_sim_hop_dither_is_salted(self, seed):
        # network.py formerly: np.random.default_rng((seed, 0x517CC1B7))
        assert _same_stream(stream_rng("sim.hop-dither", seed),
                            np.random.default_rng((seed, 0x517CC1B7)))

    @pytest.mark.parametrize("seed,i", [(0, 0), (0, 3), (42, 1)])
    def test_link_loss_is_indexed(self, seed, i):
        # topology.py formerly: np.random.default_rng((seed, i))
        assert _same_stream(stream_rng("link.loss", seed, index=i),
                            np.random.default_rng((seed, i)))

    @pytest.mark.parametrize("seed", [0, 5, 1000])
    def test_env_params_is_raw_seed(self, seed):
        # env.py formerly: np.random.default_rng(seed)
        assert _same_stream(stream_rng("env.params", seed),
                            np.random.default_rng(seed))

    @pytest.mark.parametrize("seed", [1, 6, 77])
    def test_env_episode_link_is_affine(self, seed):
        # env.py formerly: np.random.default_rng(seed * 7919 + 1)
        assert _same_stream(stream_rng("env.episode-link", seed),
                            np.random.default_rng(seed * 7919 + 1))

    @pytest.mark.parametrize("seed", [0, 23])
    def test_trace_synth_is_raw_seed(self, seed):
        # traces.py formerly: np.random.default_rng(seed)
        assert _same_stream(stream_rng("trace.synth", seed),
                            np.random.default_rng(seed))


class TestDerivationContract:
    def test_unknown_stream_rejected(self):
        with pytest.raises(KeyError, match="unknown RNG stream"):
            stream_rng("no.such.stream", 0)

    def test_missing_seed_material_rejected(self):
        with pytest.raises(ValueError):
            stream_rng("sim.pacing")          # raw needs a seed
        with pytest.raises(ValueError):
            stream_rng("link.loss", 0)        # indexed needs an index
        with pytest.raises(ValueError):
            stream_rng("link.default")        # named needs a key

    def test_tuple_kinds_disjoint_from_int_kinds(self):
        # SeedSequence treats an int and a tuple as different entropy:
        # salted/indexed streams can never collide with raw/affine ones
        # even at the same seed value.
        seed = 11
        assert not _same_stream(stream_rng("sim.pacing", seed),
                                stream_rng("sim.hop-dither", seed))
        assert not _same_stream(stream_rng("sim.pacing", seed),
                                stream_rng("link.loss", seed, index=seed))

    def test_salts_clear_index_floor(self):
        # A salted stream sharing a domain with an indexed stream must
        # use a salt no plausible link/flow index can reach.
        indexed_domains = {s.domain for s in STREAMS if s.derive == "indexed"}
        for s in STREAMS:
            if s.derive == "salted" and s.domain in indexed_domains:
                assert s.salt >= INDEX_SALT_FLOOR, s.name

    def test_int_valued_overlaps_carry_collision_notes(self):
        # Within one domain, any two int-valued derivations (raw/affine)
        # can overlap; the registry must document every such pair.
        by_domain = {}
        for s in STREAMS:
            if s.derive in ("raw", "affine"):
                by_domain.setdefault(s.domain, []).append(s)
        for domain, streams in by_domain.items():
            if len(streams) > 1:
                for s in streams:
                    assert s.collision_note, (
                        f"{s.name} shares int-valued domain {domain!r} "
                        f"without a collision_note")

    def test_stream_names_unique(self):
        names = [s.name for s in STREAMS]
        assert len(names) == len(set(names))

    def test_derive_seed_exposes_entropy(self):
        assert derive_seed("sim.pacing", 9) == 9
        assert derive_seed("sim.hop-dither", 9) == (9, 0x517CC1B7)
        assert derive_seed("link.loss", 9, index=2) == (9, 2)
        assert derive_seed("env.episode-link", 9) == 9 * 7919 + 1


class TestLinkDefaultFallback:
    """Satellite: Link() without rng gets a name-derived stream, not a
    process-wide shared ``default_rng(0)``."""

    def test_same_name_same_stream(self):
        a = Link(trace=100.0, delay=0.01, queue_size=10, loss_rate=0.5,
                 name="bottleneck")
        b = Link(trace=100.0, delay=0.01, queue_size=10, loss_rate=0.5,
                 name="bottleneck")
        assert _same_stream(a.rng, b.rng)

    def test_different_names_different_streams(self):
        a = Link(trace=100.0, delay=0.01, queue_size=10, loss_rate=0.5,
                 name="uplink")
        b = Link(trace=100.0, delay=0.01, queue_size=10, loss_rate=0.5,
                 name="downlink")
        assert not _same_stream(a.rng, b.rng)

    def test_fallback_disjoint_from_legacy_shared_stream(self):
        # The hazard being removed: every anonymous link used to drain
        # one default_rng(0).
        link = Link(trace=100.0, delay=0.01, queue_size=10, loss_rate=0.5)
        assert not _same_stream(link.rng, np.random.default_rng(0))

    def test_explicit_rng_still_wins(self):
        rng = np.random.default_rng(77)
        link = Link(trace=100.0, delay=0.01, queue_size=10, rng=rng)
        assert link.rng is rng
