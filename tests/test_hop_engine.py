"""Tests for the event-driven per-hop transit scheduler.

Three guarantees anchor the refactor:

* **bit-identity** -- single-hop forward paths with pure-propagation
  returns produce byte-for-byte the same results under the event
  engine as under the eager emit-time twin (the pre-refactor engine),
  so every single-bottleneck result in the paper's evaluation is
  unchanged;
* **in-order arrivals** -- under the event engine every link's
  ``transmit()`` offers are time-ordered across all flows and both
  directions (the eager twin violates this on shared downstream hops
  with future-stamped transits);
* **honest shared-hop queueing** -- on a parking lot the two engines
  measurably diverge, and the event engine's results are identical
  serial vs. parallel.

Plus the satellites: real ack loss on queued reverse paths (cumulative
ack recovery and the retransmit-timeout fallback) and per-path ack
wire sizes.
"""

import numpy as np
import pytest

from repro.eval.parallel import ParallelRunner
from repro.eval.scenarios import Scenario, ScenarioSuite
from repro.eval.runner import EvalNetwork
from repro.eval.sweeps import shared_hop_suites
from repro.netsim.link import Link
from repro.netsim.network import ACK_BYTES, FlowSpec, Simulation
from repro.netsim.packet import Packet
from repro.netsim.sender import ExternalRateController
from repro.netsim.topology import Topology
from repro.netsim.traces import ConstantTrace

NET = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=15.0)


def make_link(pps=100.0, delay=0.02, queue=50, loss=0.0, seed=0, name=""):
    return Link(ConstantTrace(pps), delay=delay, queue_size=queue,
                loss_rate=loss, rng=np.random.default_rng(seed), name=name)


def record_signature(record):
    """Full content of a FlowRecord, for exact equality checks."""
    return (record.scheme, record.mean_throughput_pps, record.mean_rtt,
            record.loss_rate, record.mean_utilization,
            tuple((s.start, s.end, s.sent, s.acked, s.lost, s.mean_rtt,
                   s.min_rtt, s.latency_gradient) for s in record.records))


def parking_lot_sim(transit, duration=10.0, **kwargs):
    links = [make_link(pps=100.0, delay=0.01, queue=20, seed=1, name="a"),
             make_link(pps=100.0, delay=0.01, queue=20, seed=2, name="b")]
    topo = Topology.parking_lot(links)
    sim = Simulation(topo, [
        FlowSpec(ExternalRateController(90.0), path="through"),
        FlowSpec(ExternalRateController(60.0), path="cross0"),
        FlowSpec(ExternalRateController(60.0), path="cross1"),
    ], duration=duration, seed=3, transit=transit, **kwargs)
    return sim, links


class TestSingleHopBitIdentity:
    """The fingerprint-twin guarantee on single-bottleneck shapes."""

    def run_single_link(self, transit):
        link = make_link(pps=80.0, delay=0.02, queue=25, loss=0.03, seed=4)
        sim = Simulation(link, [
            FlowSpec(ExternalRateController(70.0), keep_packets=True),
            FlowSpec(ExternalRateController(50.0), start_time=1.0,
                     stop_time=6.0),
        ], duration=8.0, seed=4, transit=transit)
        records = sim.run_all()
        packets = [(p.seq, p.send_time, p.arrival_time, p.ack_time,
                    p.dropped, p.drop_kind, p.queue_delay)
                   for p in sim.flows[0].packets]
        return [record_signature(r) for r in records], packets

    def test_direct_simulation_identical(self):
        assert self.run_single_link("event") == self.run_single_link("eager")

    def test_suite_grid_identical(self):
        """Every single-bottleneck cell of a transit-paired grid must be
        byte-identical between the engines (the existing fingerprint
        grids, extended with the transits axis)."""
        suite = ScenarioSuite(
            name="twin", lineups=("cubic", ("vegas", "bbr")),
            bandwidths_mbps=(6.0, 12.0), losses=(0.0, 0.02),
            traces=(None, "fig1-step"), transits=("event", "eager"),
            duration=3.0, seeds=(7,))
        outcome = ParallelRunner(n_workers=1, use_cache=False).run(suite)
        cells = {}
        for result in outcome:
            twin_key = result.scenario.name.replace(
                f"transit={result.scenario.transit}", "transit=*")
            cells.setdefault(twin_key, {})[result.scenario.transit] = [
                record_signature(r) for r in result.records]
        assert len(cells) == len(suite) // 2
        for twin_key, pair in cells.items():
            assert pair["event"] == pair["eager"], twin_key

    def test_fingerprints_differ_between_transit_modes(self):
        a = Scenario(name="x", network=NET, flows=("cubic",))
        b = Scenario(name="x", network=NET, flows=("cubic",),
                     transit="eager")
        assert a.transit == "event"
        assert a.fingerprint() != b.fingerprint()

    def test_unknown_transit_rejected(self):
        with pytest.raises(ValueError, match="transit"):
            Simulation(make_link(), [FlowSpec(ExternalRateController(1.0))],
                       duration=1.0, transit="psychic")
        with pytest.raises(ValueError, match="transit"):
            Scenario(name="x", network=NET, flows=("cubic",),
                     transit="psychic")


class TestInOrderArrivals:
    """Every link sees a time-ordered transmit stream (event engine)."""

    def test_event_engine_in_order_on_every_link(self):
        sim, links = parking_lot_sim("event")
        times = {id(l): [] for l in links}
        for link in links:
            original = link.transmit

            def spy(t, size=1.0, _orig=original, _log=times[id(link)]):
                _log.append(t)
                return _orig(t, size=size)

            link.transmit = spy
        sim.run_all()
        for link in links:
            offers = times[id(link)]
            assert len(offers) > 200
            assert all(t1 <= t2 for t1, t2 in zip(offers, offers[1:])), \
                f"link {link.name} saw out-of-order arrivals"
            assert link.reordered == 0

    def test_eager_twin_reorders_shared_downstream_hop(self):
        """The pre-refactor scheme future-stamps through-flow transits,
        interleaving them out of time order with cross-traffic on the
        shared second hop -- the dishonesty the refactor removes."""
        sim, links = parking_lot_sim("eager")
        sim.run_all()
        assert links[0].reordered == 0  # first hop transits at emit time
        assert links[1].reordered > 50

    def test_reverse_direction_in_order_too(self):
        """Wired reverse links also see time-ordered offers: acks are
        deferred per hop like data, not walked eagerly at rcv time."""
        links = {"fwd": make_link(pps=400.0, delay=0.01, queue=100, name="fwd"),
                 "mid": make_link(pps=120.0, delay=0.005, queue=40, name="mid"),
                 "rev": make_link(pps=60.0, delay=0.01, queue=40, name="rev")}
        topo = Topology(links, {"dl": ("fwd",), "up": ("rev", "mid")},
                        default_path="dl",
                        reverse_paths={"dl": ("rev",), "up": ("mid", "fwd")})
        sim = Simulation(topo, [
            FlowSpec(ExternalRateController(80.0), path="dl"),
            FlowSpec(ExternalRateController(50.0), path="up"),
        ], duration=8.0, seed=11, transit="event")
        sim.run_all()
        assert all(l.reordered == 0 for l in links.values())


class TestSharedHopDivergence:
    """Eager vs. event must differ where queue occupancy was misstated."""

    def test_parking_lot_diverges(self):
        (ev, _), _ = parking_lot_sim("event"), None
        records_event = ev.run_all()
        ea, _ = parking_lot_sim("eager")
        records_eager = ea.run_all()
        through_event, through_eager = records_event[0], records_eager[0]
        assert record_signature(through_event) != \
            record_signature(through_eager)
        # The divergence is substantive, not float dust: the shared-hop
        # queueing signal (RTT or loss) shifts by at least a few percent.
        delta = abs(through_event.mean_rtt - through_eager.mean_rtt)
        assert (delta > 0.02 * through_eager.mean_rtt
                or abs(through_event.loss_rate - through_eager.loss_rate)
                > 0.01)

    def test_shared_hop_suite_serial_equals_parallel(self):
        """Two flows crossing one parking-lot hop see identical queue
        delays (and everything else) serial vs. parallel."""
        lot, control = shared_hop_suites(schemes=("cubic", "bbr"),
                                         duration=3.0, seeds=(5,))
        serial = ParallelRunner(n_workers=1, use_cache=False)
        parallel = ParallelRunner(n_workers=2, use_cache=False)
        for suite in (lot, control):
            flat_serial = [(r.scenario.name, record_signature(rec))
                           for r in serial.run(suite) for rec in r.records]
            flat_parallel = [(r.scenario.name, record_signature(rec))
                             for r in parallel.run(suite) for rec in r.records]
            assert flat_serial == flat_parallel

    def test_control_suite_is_transit_invariant(self):
        """The single-bottleneck control grid must not diverge."""
        _, control = shared_hop_suites(schemes=("cubic",), duration=3.0,
                                       seeds=(5,))
        outcome = ParallelRunner(n_workers=1, use_cache=False).run(control)
        by_transit = {r.scenario.transit: [record_signature(rec)
                                           for rec in r.records]
                      for r in outcome}
        assert by_transit["event"] == by_transit["eager"]


def ack_loss_topology(rev_queue=2, rev_pps=50.0, ack_bytes=None):
    """Fast forward link; skinny, shallow-buffered reverse link."""
    links = {"fwd": make_link(pps=1000.0, delay=0.01, queue=200, name="fwd"),
             "rev": make_link(pps=rev_pps, delay=0.01, queue=rev_queue,
                              name="rev")}
    ack = {} if ack_bytes is None else {"through": ack_bytes}
    return Topology(links, {"through": ("fwd",), "up": ("rev",)},
                    default_path="through",
                    reverse_paths={"through": ("rev",), "up": ("fwd",)},
                    ack_bytes=ack)


class TestAckLoss:
    """A reverse-path buffer drop now really drops the ack."""

    def run_through(self, topo, upload_rate=100.0, duration=8.0,
                    through_stop=float("inf"), transit="event"):
        specs = [FlowSpec(ExternalRateController(50.0), path="through",
                         keep_packets=True, stop_time=through_stop)]
        if upload_rate:
            specs.append(FlowSpec(ExternalRateController(upload_rate),
                                  path="up"))
        sim = Simulation(topo, specs, duration=duration, seed=21,
                         transit=transit)
        records = sim.run_all()
        return records, sim.flows[0]

    def test_buffer_dropped_acks_are_recovered_or_timed_out(self):
        records, flow = self.run_through(ack_loss_topology())
        packets = [p for p in flow.packets]
        recovered = [p for p in packets if p.ack_recovered]
        timed_out = [p for p in packets if p.ack_dropped]
        # The overloaded shallow reverse buffer really eats acks...
        assert len(recovered) + len(timed_out) > 10
        # ...most are covered by later cumulative acks...
        assert recovered
        # ...and every packet is still accounted for exactly once.
        assert (flow.total_acked + flow.total_lost + flow.inflight
                == flow.total_sent)
        # Recovered acks carry the recovery moment, not their own
        # (never-completed) walk: RTT samples stay monotone per packet.
        for p in recovered:
            assert p.ack_time is not None and p.ack_time > p.send_time
        # Timed-out packets were counted as losses even though the
        # data itself was delivered.
        for p in timed_out:
            assert not p.dropped and p.ack_time is None
        assert flow.total_lost >= len(timed_out)

    def test_rto_fires_when_no_later_ack_arrives(self):
        """A sender that stops emitting cannot be rescued by a later
        cumulative ack: its trailing lost acks must surface as
        retransmit timeouts, not hang in flight forever."""
        records, flow = self.run_through(ack_loss_topology(rev_queue=0),
                                         duration=12.0, through_stop=4.0)
        assert flow.pending_acks == {}
        assert flow.inflight == 0
        assert any(p.ack_dropped for p in flow.packets)
        assert (flow.total_acked + flow.total_lost == flow.total_sent)

    def test_loss_notices_are_never_lost(self):
        """Forward drops must reach the sender as loss events even when
        the reverse buffer is overflowing (loss information is implied
        by every later cumulative ack, so notices convert to delay)."""
        links = {"fwd": make_link(pps=40.0, delay=0.01, queue=2, name="fwd"),
                 "rev": make_link(pps=50.0, delay=0.01, queue=0, name="rev")}
        topo = Topology(links, {"through": ("fwd",), "up": ("rev",)},
                        default_path="through",
                        reverse_paths={"through": ("rev",), "up": ("fwd",)})
        specs = [FlowSpec(ExternalRateController(80.0), path="through",
                          keep_packets=True),
                 FlowSpec(ExternalRateController(100.0), path="up")]
        sim = Simulation(topo, specs, duration=8.0, seed=22)
        sim.run_all()
        flow = sim.flows[0]
        forward_drops = [p for p in flow.packets if p.dropped]
        assert len(forward_drops) > 50
        # Every observed-by-now forward drop was delivered as a loss
        # (the remainder are still in flight at the horizon).
        assert flow.total_lost > 0.8 * len(forward_drops)

    def test_loss_notice_rescues_parked_acks(self):
        """A loss notice is cumulative feedback: it confirms delivery
        of everything below the gap, so a parked ack below the lost
        sequence recovers instead of waiting out its RTO."""
        topo = ack_loss_topology()
        sim = Simulation(topo, [FlowSpec(ExternalRateController(10.0),
                                         path="through")], duration=1.0)
        flow = sim.flows[0]
        parked = Packet(flow_id=0, seq=0, send_time=0.0)
        flow.note_sent(parked)
        flow.pending_acks[0] = parked
        lost = Packet(flow_id=0, seq=1, send_time=0.1, dropped=True)
        flow.note_sent(lost)
        sim.now = 0.5
        sim._handle_loss(flow, lost)
        assert parked.ack_recovered and parked.ack_time == 0.5
        assert flow.pending_acks == {}
        assert flow.total_acked == 1 and flow.total_lost == 1

    def test_eager_twin_keeps_delivered_late_semantics(self):
        """The frozen pre-refactor twin must not grow ack loss."""
        records, flow = self.run_through(ack_loss_topology(),
                                         transit="eager")
        assert not any(p.ack_recovered or p.ack_dropped
                       for p in flow.packets)
        assert flow.pending_acks == {}


class TestPerPathAckBytes:
    def test_default_matches_engine_constant(self):
        topo = ack_loss_topology()
        sim = Simulation(topo, [FlowSpec(ExternalRateController(10.0),
                                         path="through")], duration=1.0)
        assert sim.flows[0].ack_bytes == ACK_BYTES

    def test_path_override_reaches_flow(self):
        topo = ack_loss_topology(ack_bytes=600)
        sim = Simulation(topo, [FlowSpec(ExternalRateController(10.0),
                                         path="through")], duration=1.0)
        assert sim.flows[0].ack_bytes == 600
        assert sim.flows[0].ack_size == pytest.approx(0.4)

    def test_fat_acks_congest_the_reverse_link_sooner(self):
        """Same topology, same load: 600-byte acks must inflate RTT
        over 40-byte acks (15x the service demand per ack)."""
        def mean_rtt(ack_bytes):
            topo = ack_loss_topology(rev_queue=50, rev_pps=30.0,
                                     ack_bytes=ack_bytes)
            sim = Simulation(topo, [
                FlowSpec(ExternalRateController(50.0), path="through"),
                FlowSpec(ExternalRateController(20.0), path="up"),
            ], duration=8.0, seed=23)
            return sim.run_all()[0].mean_rtt

        assert mean_rtt(600) > 1.2 * mean_rtt(None)
