"""Tests for repro.config: Table 2/3 values and helpers."""

import numpy as np
import pytest

from repro.config import (
    BOOTSTRAP_OBJECTIVES,
    DEFAULT_TRAINING,
    TESTING_RANGES,
    TRAINING_RANGES,
    TrainingConfig,
)


class TestTable2:
    """The learning hyperparameters of paper Table 2."""

    def test_discount_factor(self):
        assert DEFAULT_TRAINING.discount_factor == 0.99

    def test_learning_rate(self):
        assert DEFAULT_TRAINING.learning_rate == pytest.approx(1e-3)

    def test_action_scale(self):
        assert DEFAULT_TRAINING.action_scale == pytest.approx(0.025)

    def test_history_length(self):
        assert DEFAULT_TRAINING.history_length == 10

    def test_num_landmarks(self):
        assert DEFAULT_TRAINING.num_landmarks == 36

    def test_clip_epsilon(self):
        assert DEFAULT_TRAINING.clip_epsilon == pytest.approx(0.2)

    def test_architecture_is_64_32_per_section5(self):
        assert DEFAULT_TRAINING.hidden_sizes == (64, 32)


class TestEntropyDecay:
    """beta decays 1 -> 0.1 over 1000 iterations (§5)."""

    def test_start(self):
        assert DEFAULT_TRAINING.entropy_coef(0) == pytest.approx(1.0)

    def test_end(self):
        assert DEFAULT_TRAINING.entropy_coef(1000) == pytest.approx(0.1)

    def test_beyond_end_stays(self):
        assert DEFAULT_TRAINING.entropy_coef(5000) == pytest.approx(0.1)

    def test_midpoint(self):
        assert DEFAULT_TRAINING.entropy_coef(500) == pytest.approx(0.55)

    def test_monotone_decreasing(self):
        values = [DEFAULT_TRAINING.entropy_coef(i) for i in range(0, 1200, 100)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestTable3:
    """Training/testing network ranges of paper Table 3."""

    def test_training_bandwidth(self):
        assert TRAINING_RANGES.bandwidth_mbps == (1.0, 5.0)

    def test_training_latency(self):
        assert TRAINING_RANGES.latency_ms == (10.0, 50.0)

    def test_training_loss(self):
        assert TRAINING_RANGES.loss_rate == (0.0, 0.03)

    def test_testing_bandwidth(self):
        assert TESTING_RANGES.bandwidth_mbps == (10.0, 50.0)

    def test_testing_latency(self):
        assert TESTING_RANGES.latency_ms == (10.0, 200.0)

    def test_testing_queue(self):
        assert TESTING_RANGES.queue_packets == (500, 5000)

    def test_testing_loss(self):
        assert TESTING_RANGES.loss_rate == (0.0, 0.10)

    def test_testing_wider_than_training(self):
        """Evaluation deliberately exceeds training (§6 settings)."""
        assert TESTING_RANGES.bandwidth_mbps[1] > TRAINING_RANGES.bandwidth_mbps[1]
        assert TESTING_RANGES.latency_ms[1] > TRAINING_RANGES.latency_ms[1]
        assert TESTING_RANGES.loss_rate[1] > TRAINING_RANGES.loss_rate[1]

    def test_sample_within_ranges(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = TRAINING_RANGES.sample(rng)
            assert 1.0 <= p.bandwidth_mbps <= 5.0
            assert 10.0 <= p.latency_ms <= 50.0
            assert 1 <= p.queue_packets <= 3000
            assert 0.0 <= p.loss_rate <= 0.03

    def test_sample_varies(self):
        rng = np.random.default_rng(0)
        draws = {TRAINING_RANGES.sample(rng).bandwidth_mbps for _ in range(10)}
        assert len(draws) > 1


class TestBootstrapObjectives:
    """The three Appendix-B bootstrap objectives."""

    def test_count(self):
        assert len(BOOTSTRAP_OBJECTIVES) == 3

    def test_values(self):
        assert (0.6, 0.3, 0.1) in BOOTSTRAP_OBJECTIVES
        assert (0.1, 0.6, 0.3) in BOOTSTRAP_OBJECTIVES
        assert (0.3, 0.1, 0.6) in BOOTSTRAP_OBJECTIVES

    def test_each_sums_to_one(self):
        for b in BOOTSTRAP_OBJECTIVES:
            assert sum(b) == pytest.approx(1.0)


class TestReplace:
    def test_replace_returns_new_config(self):
        cfg = DEFAULT_TRAINING.replace(learning_rate=5e-4)
        assert cfg.learning_rate == pytest.approx(5e-4)
        assert DEFAULT_TRAINING.learning_rate == pytest.approx(1e-3)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_TRAINING.learning_rate = 0.5  # type: ignore[misc]

    def test_custom_entropy_schedule(self):
        cfg = TrainingConfig(entropy_start=0.5, entropy_end=0.5)
        assert cfg.entropy_coef(123) == pytest.approx(0.5)
