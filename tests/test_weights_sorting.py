"""Tests for weight vectors (§4.1) and the Appendix-B sorting algorithm."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BOOTSTRAP_OBJECTIVES
from repro.core.sorting import (
    bootstrap_indices,
    neighborhood_sort,
    objective_graph,
    traversal_order,
)
from repro.core.weights import (
    nearest_grid_point,
    omega_for_step,
    project_to_simplex,
    sample_weight,
    simplex_grid,
    step_for_omega,
    validate_weights,
)


class TestValidation:
    def test_valid(self):
        w = validate_weights([0.8, 0.1, 0.1])
        np.testing.assert_allclose(w, [0.8, 0.1, 0.1])

    def test_wrong_sum(self):
        with pytest.raises(ValueError, match="sum"):
            validate_weights([0.5, 0.5, 0.5])

    def test_wrong_shape(self):
        with pytest.raises(ValueError, match="3 components"):
            validate_weights([0.5, 0.5])

    def test_open_interval(self):
        with pytest.raises(ValueError, match="open interval"):
            validate_weights([1.0, 0.0, 0.0])
        with pytest.raises(ValueError, match="open interval"):
            validate_weights([-0.1, 0.6, 0.5])


class TestSimplexGrid:
    @pytest.mark.parametrize("k,omega", [(4, 3), (5, 6), (6, 10), (10, 36), (20, 171)])
    def test_paper_omega_values(self, k, omega):
        """Fig. 16's omega in {3, 6, 10, 36, 171} for these step sizes."""
        assert omega_for_step(k) == omega
        assert len(simplex_grid(k)) == omega

    def test_grid_points_valid(self):
        for w in simplex_grid(10):
            validate_weights(w)

    def test_grid_unique(self):
        grid = simplex_grid(10)
        assert len({tuple(np.round(w, 9)) for w in grid}) == len(grid)

    def test_step_for_omega_roundtrip(self):
        for k in (4, 5, 6, 10, 20):
            assert step_for_omega(omega_for_step(k)) == k

    def test_step_for_omega_invalid(self):
        with pytest.raises(ValueError):
            step_for_omega(37)

    def test_bootstraps_on_grid(self):
        grid = {tuple(np.round(w, 9)) for w in simplex_grid(10)}
        for b in BOOTSTRAP_OBJECTIVES:
            assert tuple(np.round(b, 9)) in grid


class TestSampling:
    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_sample_weight_valid(self, seed):
        w = sample_weight(np.random.default_rng(seed))
        validate_weights(w)
        assert np.all(w >= 0.05 - 1e-9)

    @given(st.floats(0, 10), st.floats(0, 10), st.floats(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_project_always_valid(self, a, b, c):
        w = project_to_simplex([a, b, c])
        validate_weights(w)

    def test_project_greedy_vector(self):
        """The paper's Fig. 10 w=<1,0,0> projected into the simplex."""
        w = project_to_simplex([1.0, 0.0, 0.0])
        assert w[0] > 0.9
        assert w[1] > 0.0 and w[2] > 0.0

    def test_nearest_grid_point(self):
        w = nearest_grid_point([0.79, 0.11, 0.10], 10)
        np.testing.assert_allclose(w, [0.8, 0.1, 0.1])


class TestObjectiveGraph:
    def test_paper_neighbour_examples(self):
        """Appendix B's worked examples at step 0.1."""
        grid = simplex_grid(10)
        adjacency = objective_graph(grid)
        index = {tuple(np.round(w, 6)): i for i, w in enumerate(grid)}

        a = index[(0.2, 0.4, 0.4)]
        b = index[(0.2, 0.5, 0.3)]
        c = index[(0.1, 0.5, 0.4)]
        d = index[(0.1, 0.3, 0.6)]
        assert b in adjacency[a]      # neighbours
        assert c in adjacency[a]      # neighbours
        assert d not in adjacency[a]  # not neighbours (2 steps away)

    def test_graph_connected(self):
        grid = simplex_grid(10)
        adjacency = objective_graph(grid)
        g = nx.Graph()
        g.add_nodes_from(range(len(grid)))
        for i, nbrs in enumerate(adjacency):
            g.add_edges_from((i, j) for j in nbrs)
        assert nx.is_connected(g)

    def test_symmetry(self):
        adjacency = objective_graph(simplex_grid(6))
        for i, nbrs in enumerate(adjacency):
            for j in nbrs:
                assert i in adjacency[j]

    def test_degree_bounded(self):
        """Each vertex has at most 6 neighbours (hex lattice)."""
        adjacency = objective_graph(simplex_grid(10))
        assert max(len(n) for n in adjacency) <= 6


class TestNeighborhoodSort:
    def test_is_permutation(self):
        grid = simplex_grid(10)
        order = neighborhood_sort(grid, BOOTSTRAP_OBJECTIVES)
        assert sorted(order) == list(range(len(grid)))

    def test_starts_at_a_bootstrap(self):
        grid = simplex_grid(10)
        order = neighborhood_sort(grid, BOOTSTRAP_OBJECTIVES)
        starts = bootstrap_indices(grid, BOOTSTRAP_OBJECTIVES)
        assert order[0] in starts

    def test_early_visits_near_bootstraps(self):
        """The first visits stay close to the pivots (transfer locality)."""
        grid = simplex_grid(10)
        adjacency = objective_graph(grid)
        g = nx.Graph()
        g.add_nodes_from(range(len(grid)))
        for i, nbrs in enumerate(adjacency):
            g.add_edges_from((i, j) for j in nbrs)
        sources = bootstrap_indices(grid, BOOTSTRAP_OBJECTIVES)
        dist = {}
        for idx in range(len(grid)):
            dist[idx] = min(nx.shortest_path_length(g, s, idx) for s in sources)
        order = neighborhood_sort(grid, BOOTSTRAP_OBJECTIVES)
        first_half = np.mean([dist[i] for i in order[:len(order) // 2]])
        second_half = np.mean([dist[i] for i in order[len(order) // 2:]])
        assert first_half <= second_half

    def test_works_on_small_grid(self):
        grid = simplex_grid(4)
        order = neighborhood_sort(grid, [(0.5, 0.25, 0.25)])
        assert sorted(order) == [0, 1, 2]

    def test_traversal_order_shape(self):
        path = traversal_order(10, BOOTSTRAP_OBJECTIVES)
        assert path.shape == (36, 3)
        np.testing.assert_allclose(path.sum(axis=1), 1.0)
