"""Tests for the bottleneck link model (repro.netsim.link).

``transmit()`` returns the allocation-free outcome tuple
``(delivered, drop_kind, depart_time, queue_delay)`` -- the PR 5
hot-path contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.link import Link, PropagationLink
from repro.netsim.traces import ConstantTrace, StepTrace


def make_link(pps=100.0, delay=0.01, queue=50, loss=0.0, seed=0):
    return Link(ConstantTrace(pps), delay=delay, queue_size=queue,
                loss_rate=loss, rng=np.random.default_rng(seed))


class TestTransmit:
    def test_idle_link_delay(self):
        link = make_link(pps=100.0, delay=0.01)
        delivered, drop_kind, depart, queue_delay = link.transmit(0.0)
        assert delivered and drop_kind is None
        # service (1/100) + propagation (0.01)
        assert depart == pytest.approx(0.02)
        assert queue_delay == 0.0

    def test_queueing_builds(self):
        link = make_link(pps=100.0, delay=0.0, queue=1000)
        first = link.transmit(0.0)
        second = link.transmit(0.0)
        assert second[3] == pytest.approx(0.01)          # queue_delay
        assert second[2] == pytest.approx(first[2] + 0.01)  # depart_time

    def test_fifo_ordering(self):
        link = make_link(pps=50.0, delay=0.005, queue=1000)
        departs = [link.transmit(0.0)[2] for _ in range(10)]
        assert departs == sorted(departs)

    def test_queue_drains_over_time(self):
        link = make_link(pps=100.0, delay=0.0, queue=1000)
        for _ in range(10):
            link.transmit(0.0)
        assert link.queue_delay_at(0.0) == pytest.approx(0.1)
        assert link.queue_delay_at(0.05) == pytest.approx(0.05)
        assert link.queue_delay_at(1.0) == 0.0

    def test_buffer_overflow_drops(self):
        link = make_link(pps=100.0, delay=0.0, queue=5)
        outcomes = [link.transmit(0.0) for _ in range(10)]
        dropped = [r for r in outcomes if not r[0]]
        assert dropped, "expected drops beyond the 5-packet buffer"
        assert all(r[1] == "buffer" for r in dropped)
        assert link.dropped_buffer == len(dropped)

    def test_zero_queue_drops_when_busy(self):
        link = make_link(pps=100.0, delay=0.0, queue=0)
        assert link.transmit(0.0)[0]
        assert not link.transmit(0.0)[0]

    def test_random_loss_statistics(self):
        link = make_link(pps=1e9, delay=0.0, queue=10**6, loss=0.3, seed=1)
        n = 5000
        delivered = sum(link.transmit(i * 1e-6)[0] for i in range(n))
        assert delivered / n == pytest.approx(0.7, abs=0.03)

    def test_random_loss_keeps_timing(self):
        """Random drops happen on the wire: depart time is still computed."""
        link = make_link(pps=100.0, delay=0.01, queue=100, loss=0.999, seed=2)
        delivered, drop_kind, depart, _ = link.transmit(0.0)
        if not delivered:
            assert drop_kind == "random"
            assert depart > 0.0

    @settings(max_examples=20, deadline=None)
    @given(queue=st.integers(1, 30), n=st.integers(1, 100))
    def test_backlog_never_exceeds_buffer(self, queue, n):
        link = make_link(pps=100.0, delay=0.0, queue=queue)
        for _ in range(n):
            link.transmit(0.0)
            assert link.backlog_at(0.0) <= queue + 1 + 1e-6


class TestSizedTransmit:
    def test_small_packet_takes_proportional_service(self):
        link = make_link(pps=100.0, delay=0.01)
        assert link.transmit(0.0, size=0.5)[2] == pytest.approx(0.005 + 0.01)
        assert link.busy_until == pytest.approx(0.005)

    def test_default_size_unchanged(self):
        a, b = make_link(), make_link()
        assert a.transmit(0.0)[2] == b.transmit(0.0, size=1.0)[2]

    def test_acks_fill_buffers_slowly(self):
        """40/1500-sized transmits occupy backlog at their true ratio:
        a queue that drops the 6th data packet holds ~190 acks."""
        data, acks = make_link(pps=100.0, delay=0.0, queue=5), \
            make_link(pps=100.0, delay=0.0, queue=5)
        data_ok = sum(data.transmit(0.0)[0] for _ in range(200))
        ack_ok = sum(acks.transmit(0.0, size=40 / 1500)[0]
                     for _ in range(200))
        assert data_ok == 6  # queue 5 + the one in service
        assert ack_ok > 150


class TestConstantRateFastPath:
    def test_constant_trace_rate_is_cached(self):
        link = make_link(pps=250.0)
        assert link._const_rate == 250.0
        assert link.bandwidth_at(0.0) == 250.0
        assert link.bandwidth_at(123.0) == 250.0

    def test_varying_trace_not_cached(self):
        trace = StepTrace(100.0, 200.0, period=1.0)
        link = Link(trace, delay=0.0, queue_size=10)
        assert link._const_rate is None
        assert link.bandwidth_at(0.0) == trace.bandwidth_at(0.0)
        assert link.bandwidth_at(1.5) == trace.bandwidth_at(1.5)

    def test_varying_trace_transmit_matches_trace_rate(self):
        trace = StepTrace(100.0, 200.0, period=1.0)
        link = Link(trace, delay=0.0, queue_size=10)
        # First phase is high (200 pps): service = 1/200.
        assert link.transmit(0.0)[2] == pytest.approx(1.0 / 200.0)


class TestPropagationLink:
    def test_pure_propagation_timing(self):
        link = PropagationLink(0.03)
        for t in (0.0, 1.0, 0.5):  # stateless: order does not matter
            delivered, drop_kind, depart, queue_delay = link.transmit(t)
            assert delivered and drop_kind is None
            assert depart == pytest.approx(t + 0.03)
            assert queue_delay == 0.0

    def test_never_queues_or_drops(self):
        link = PropagationLink(0.01)
        for _ in range(100):
            assert link.transmit(0.0)[0]
        assert link.queue_delay_at(0.0) == 0.0
        assert link.dropped_buffer == 0

    def test_pure_delay_marker(self):
        """The engine's zero-work fast path keys off ``pure_delay``:
        set (to the delay) on the pseudo-link, None on real links."""
        assert PropagationLink(0.02).pure_delay == pytest.approx(0.02)
        assert make_link().pure_delay is None

    def test_engines_never_call_transmit_on_pure_links(self, monkeypatch):
        """Both engine cores compute pure-link arrivals inline
        (``now + pure_delay``); the zero-work fast path means
        ``transmit`` is never invoked from a hot loop even though
        every ack transits the pure reverse pseudo-link."""
        from repro.netsim.kernel import KernelSimulation
        from repro.netsim.network import FlowSpec, Simulation
        from repro.netsim.sender import ExternalRateController

        calls = []
        orig = PropagationLink.transmit
        monkeypatch.setattr(
            PropagationLink, "transmit",
            lambda self, t, size=1.0: calls.append(t) or orig(self, t, size))
        for cls in (Simulation, KernelSimulation):
            for transit in ("event", "eager"):
                link = make_link(pps=200.0)
                sim = cls(link, [FlowSpec(ExternalRateController(100.0))],
                          duration=0.5, seed=1, transit=transit)
                (record,) = sim.run_all()
                # Packets were delivered and acked, so the reverse
                # (pure) pseudo-link was exercised -- without the call.
                assert record.mean_throughput_pps > 0
                assert sim.events_processed > 50
        assert calls == []


class TestAccounting:
    def test_counters(self):
        link = make_link(pps=100.0, delay=0.0, queue=2)
        for _ in range(5):
            link.transmit(0.0)
        assert link.delivered + link.dropped_buffer == 5

    def test_reset(self):
        link = make_link(pps=100.0, delay=0.0, queue=2)
        for _ in range(5):
            link.transmit(0.0)
        link.reset()
        assert link.busy_until == 0.0
        assert link.delivered == 0
        assert link.dropped_buffer == 0


class TestProperties:
    def test_base_rtt(self):
        assert make_link(delay=0.02).base_rtt == pytest.approx(0.04)

    def test_bdp(self):
        link = make_link(pps=100.0, delay=0.02)
        assert link.bdp_packets() == pytest.approx(4.0)

    def test_float_trace_promotion(self):
        link = Link(250.0, delay=0.01, queue_size=10)
        assert link.bandwidth_at(0.0) == 250.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_link(delay=-1.0)
        with pytest.raises(ValueError):
            Link(ConstantTrace(1.0), 0.0, -1)
        with pytest.raises(ValueError):
            Link(ConstantTrace(1.0), 0.0, 1, loss_rate=1.0)
