"""Tests for the application workloads (§6.3) and datapath shims (§5)."""

import numpy as np
import pytest

from repro.apps.bulk import run_bulk_transfers
from repro.apps.rtc import run_rtc
from repro.apps.video import BITRATES_MBPS, VideoSession
from repro.baselines import Cubic
from repro.config import DEFAULT_TRAINING
from repro.core.agent import MoccAgent
from repro.core.library import MOCC
from repro.datapath import CcpShim, UdtShim
from repro.eval.overhead import ProfilingController, measure_overhead
from repro.eval.runner import EvalNetwork, run_scheme
from repro.netsim.network import FlowRecord
from repro.netsim.sender import ExternalRateController, MonitorIntervalStats

NET = EvalNetwork(bandwidth_mbps=4.0, one_way_ms=10.0, buffer_bdp=2.0)


def _throughput_record(mbps: float, duration: float = 60.0) -> FlowRecord:
    """Synthetic record delivering a constant rate."""
    pps = mbps * 1e6 / (1500 * 8)
    stats = []
    step = 1.0
    for t in np.arange(0, duration, step):
        stats.append(MonitorIntervalStats(
            flow_id=0, start=float(t), end=float(t + step),
            sent=int(pps * step), acked=int(pps * step), lost=0,
            mean_rtt=0.04, min_rtt=0.04, latency_gradient=0.0,
            capacity_pps=pps, base_rtt=0.04, packet_bytes=1500, rate_pps=pps))
    return FlowRecord(flow_id=0, scheme="synthetic", mean_throughput_pps=pps,
                      mean_throughput_mbps=mbps, mean_utilization=1.0,
                      mean_rtt=0.04, base_rtt=0.04, loss_rate=0.0, records=stats)


class TestVideo:
    def test_fast_link_gets_top_quality(self):
        session = VideoSession()
        result = session.stream(_throughput_record(10.0), n_chunks=10)
        assert result.mean_quality >= 4.0
        assert result.rebuffer_seconds < 1.0

    def test_slow_link_gets_low_quality(self):
        session = VideoSession()
        result = session.stream(_throughput_record(0.5), n_chunks=10)
        assert result.mean_quality <= 1.5

    def test_quality_monotone_in_bandwidth(self):
        session = VideoSession()
        slow = session.stream(_throughput_record(1.0), n_chunks=10).mean_quality
        fast = session.stream(_throughput_record(6.0), n_chunks=10).mean_quality
        assert fast > slow

    def test_quality_counts_sum(self):
        session = VideoSession()
        result = session.stream(_throughput_record(3.0), n_chunks=12)
        assert result.quality_counts().sum() == len(result.qualities)

    def test_empty_record(self):
        session = VideoSession()
        record = FlowRecord(flow_id=0, scheme="x", mean_throughput_pps=0,
                            mean_throughput_mbps=0, mean_utilization=0,
                            mean_rtt=None, base_rtt=0.04, loss_rate=0, records=[])
        result = session.stream(record)
        assert result.qualities == []

    def test_ladder_is_pensieve(self):
        assert BITRATES_MBPS == (0.3, 0.75, 1.2, 1.85, 2.85, 4.3)


class TestRtc:
    def test_saturating_flow_small_gaps(self):
        ctrl = ExternalRateController(NET.bottleneck_pps * 1.2)
        result = run_rtc(ctrl, NET, duration=5.0, seed=1)
        # Saturated bottleneck: spacing ~ 1/capacity = 3 ms.
        assert result.mean_gap_ms == pytest.approx(3.0, rel=0.2)
        assert result.delivered > 1000

    def test_underutilized_flow_larger_gaps(self):
        ctrl = ExternalRateController(NET.bottleneck_pps * 0.25)
        result = run_rtc(ctrl, NET, duration=5.0, seed=2)
        assert result.mean_gap_ms > 10.0

    def test_summary_string(self):
        ctrl = ExternalRateController(100.0)
        result = run_rtc(ctrl, NET, duration=3.0, seed=3)
        assert "inter-packet delay" in result.summary()


class TestBulk:
    def test_fct_close_to_ideal_at_full_rate(self):
        result = run_bulk_transfers(
            lambda: ExternalRateController(NET.bottleneck_pps * 1.5),
            NET, file_mbytes=0.5, repeats=2, seed=1)
        ideal = 0.5 * 8e6 / (NET.bandwidth_mbps * 1e6)
        assert result.mean_fct == pytest.approx(ideal, rel=0.5)

    def test_slower_scheme_takes_longer(self):
        fast = run_bulk_transfers(
            lambda: ExternalRateController(NET.bottleneck_pps),
            NET, file_mbytes=0.5, repeats=2, seed=1)
        slow = run_bulk_transfers(
            lambda: ExternalRateController(NET.bottleneck_pps / 4),
            NET, file_mbytes=0.5, repeats=2, seed=1)
        assert slow.mean_fct > fast.mean_fct

    def test_summary(self):
        result = run_bulk_transfers(lambda: ExternalRateController(200.0),
                                    NET, file_mbytes=0.2, repeats=2, seed=2)
        assert "mean FCT" in result.summary()


class TestDatapathShims:
    def _lib(self):
        return MOCC(MoccAgent(DEFAULT_TRAINING), initial_rate=NET.bottleneck_pps / 3)

    def test_udt_inference_every_mi(self):
        shim = UdtShim(self._lib(), [0.5, 0.3, 0.2])
        run_scheme(shim, NET, duration=2.0, seed=1)
        # MI = base RTT = 20 ms -> ~100 intervals in 2 s.
        assert 80 <= shim.library.inference_count <= 110

    def test_ccp_batches_inferences(self):
        udt = UdtShim(self._lib(), [0.5, 0.3, 0.2])
        ccp = CcpShim(self._lib(), [0.5, 0.3, 0.2], batch=4)
        run_scheme(udt, NET, duration=2.0, seed=1)
        run_scheme(ccp, NET, duration=2.0, seed=1)
        assert ccp.library.inference_count * 3 < udt.library.inference_count

    def test_ccp_invalid_batch(self):
        with pytest.raises(ValueError):
            CcpShim(self._lib(), [0.5, 0.3, 0.2], batch=0)

    def test_shims_keep_sending(self):
        shim = CcpShim(self._lib(), [0.5, 0.3, 0.2], batch=4)
        record = run_scheme(shim, NET, duration=3.0, seed=2)
        assert record.mean_throughput_pps > 0


class TestOverhead:
    def test_profiling_controller_accumulates(self):
        profiled = ProfilingController(Cubic())
        run_scheme(profiled, NET, duration=2.0, seed=1)
        assert profiled.calls > 0
        assert profiled.control_seconds > 0

    def test_measure_overhead_report(self):
        report = measure_overhead(Cubic(), NET, duration=2.0, seed=1)
        assert report.scheme == "CUBIC"
        assert report.control_us_per_sim_second > 0
        assert report.sim_seconds == 2.0

    def test_model_controller_costs_more_than_cubic(self):
        from repro.core.agent import MoccController
        agent = MoccAgent(DEFAULT_TRAINING)
        mocc_report = measure_overhead(
            MoccController(agent, [0.5, 0.3, 0.2], initial_rate=100.0),
            NET, duration=3.0, seed=1)
        cubic_report = measure_overhead(Cubic(), NET, duration=3.0, seed=1)
        assert mocc_report.inference_count > 0
        assert (mocc_report.control_us_per_sim_second
                > cubic_report.control_us_per_sim_second)
