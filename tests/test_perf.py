"""Tests for the engine-speed measurement subsystem (repro.eval.perf)."""

import numpy as np
import pytest

from repro.eval.parallel import ParallelRunner
from repro.eval.perf import (
    KERNEL_GATED_SHAPES,
    KERNEL_MIN_SPEEDUP,
    PERF_SHAPES,
    calibration_score,
    check_regression,
    engine_speed_report,
    measure_kernel,
    measure_shape,
    perf_scenarios,
)
from repro.eval.scenarios import ScenarioSuite, build_scenario_simulation
from repro.netsim.link import Link
from repro.netsim.network import FlowSpec, Simulation
from repro.netsim.sender import ExternalRateController
from repro.netsim.traces import ConstantTrace


def tiny_sim(duration=1.0, transit="event"):
    link = Link(ConstantTrace(100.0), delay=0.01, queue_size=50,
                rng=np.random.default_rng(0))
    return Simulation(link, [FlowSpec(ExternalRateController(50.0))],
                      duration=duration, seed=1, transit=transit)


class TestEventCounter:
    def test_counts_every_dispatched_event(self):
        sim = tiny_sim()
        assert sim.events_processed == 0
        sim.run_all()
        # ~50 pps for 1 s: sends + rcvs + acks + MIs -- hundreds of
        # heap events, and deterministic across identical sims.
        assert sim.events_processed > 100
        twin = tiny_sim()
        twin.run_all()
        assert twin.events_processed == sim.events_processed

    def test_incremental_runs_accumulate(self):
        stepped, whole = tiny_sim(), tiny_sim()
        for t in (0.25, 0.5, 0.75, 1.0):
            stepped.run(until=t)
        whole.run()
        assert stepped.events_processed == whole.events_processed

    def test_both_transits_count(self):
        for transit in ("event", "eager"):
            sim = tiny_sim(transit=transit)
            sim.run_all()
            assert sim.events_processed > 100


class TestPerfShapes:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="perf shape"):
            perf_scenarios("moebius-strip")

    def test_shapes_build_and_run(self):
        for shape in PERF_SHAPES:
            scenarios = perf_scenarios(shape, duration=0.5,
                                       schemes=("cubic",))
            sims = [build_scenario_simulation(s) for s in scenarios]
            for sim in sims:
                sim.run_all()
                assert sim.events_processed > 0

    def test_measure_shape_sample(self):
        sample = measure_shape("single-bottleneck", duration=0.5,
                               schemes=("cubic", "bbr"))
        assert sample.cells == 1
        assert sample.events > 0
        assert sample.wall_s > 0
        assert sample.events_per_sec == pytest.approx(
            sample.events / sample.wall_s)

    def test_repeats_keep_event_count(self):
        one = measure_shape("single-bottleneck", duration=0.5,
                            schemes=("cubic",), repeats=1)
        best = measure_shape("single-bottleneck", duration=0.5,
                             schemes=("cubic",), repeats=2)
        assert one.events == best.events  # deterministic simulations


class TestReportAndRegression:
    def test_report_structure(self):
        report = engine_speed_report(shapes=("single-bottleneck",),
                                     transits=("event",), duration=0.5,
                                     schemes=("cubic",), pipeline=True,
                                     kernel=False)
        assert report["calibration_ops_per_sec"] > 0
        (entry,) = report["shapes"]
        assert entry["shape"] == "single-bottleneck"
        assert entry["events_per_sec"] > 0
        assert entry["events_per_calibration_op"] > 0
        assert report["pipeline_cells"] == 1
        assert report["pipeline_events_per_sec"] > 0
        assert "kernel" not in report

    def test_check_regression(self):
        base = {"shapes": [
            {"shape": "parking-lot", "transit": "event",
             "events_per_calibration_op": 0.40},
            {"shape": "only-in-baseline", "transit": "event",
             "events_per_calibration_op": 1.0}]}
        ok = {"shapes": [{"shape": "parking-lot", "transit": "event",
                          "events_per_calibration_op": 0.35}]}
        bad = {"shapes": [{"shape": "parking-lot", "transit": "event",
                           "events_per_calibration_op": 0.20}]}
        assert check_regression(ok, base) == []
        failures = check_regression(bad, base)
        assert len(failures) == 1 and "parking-lot" in failures[0]
        # 30% tolerance exactly at the floor passes.
        edge = {"shapes": [{"shape": "parking-lot", "transit": "event",
                            "events_per_calibration_op": 0.28}]}
        assert check_regression(edge, base) == []

    def test_calibration_score_positive(self):
        assert calibration_score(iters=20_000) > 0


class TestKernelMeasurement:
    def test_measure_kernel_payload(self):
        k = measure_kernel(duration=0.5, schemes=("cubic",), repeats=1,
                           batched=True, batch_cells=2, batch_duration=0.4)
        assert isinstance(k["compiled"], bool)
        assert tuple(k["shapes"]) == KERNEL_GATED_SHAPES
        for shape in KERNEL_GATED_SHAPES:
            entry = k["shapes"][shape]
            assert entry["reference_events"] == entry["kernel_events"]
            assert entry["speedup"] > 0
        assert k["events_match"] is True
        assert k["min_speedup"] == KERNEL_MIN_SPEEDUP
        assert k["speedup_single_bottleneck"] > 0
        assert k["speedup_parking_lot"] > 0
        assert k["batched"]["cells"] == 2
        assert k["batched_speedup"] > 0

    def test_kernel_regression_gates(self):
        base = {"shapes": [],
                "kernel": {"min_speedup": dict(KERNEL_MIN_SPEEDUP)}}

        def fresh(compiled, events_match=True, **speedups):
            k = {"compiled": compiled, "events_match": events_match}
            k.update(speedups)
            return {"shapes": [], "kernel": k}

        # Interpreted builds gate on the 0.95 parity floor.
        ok = fresh(False, speedup_single_bottleneck=1.1,
                   speedup_parking_lot=1.0, batched_speedup=1.2)
        assert check_regression(ok, base) == []
        slow = fresh(False, speedup_single_bottleneck=1.1,
                     speedup_parking_lot=0.80, batched_speedup=1.2)
        (failure,) = check_regression(slow, base)
        assert "parking-lot" in failure and "0.95" in failure

        # Compiled builds gate on the 1.5x acceptance floor: the same
        # interpreted-grade numbers fail across the board.
        compiled = fresh(True, speedup_single_bottleneck=1.1,
                         speedup_parking_lot=1.0, batched_speedup=1.2)
        failures = check_regression(compiled, base)
        assert len(failures) == 3
        assert all("1.50" in f for f in failures)

        # An events mismatch is a correctness break, never speed noise.
        broken = fresh(False, events_match=False,
                       speedup_single_bottleneck=1.1,
                       speedup_parking_lot=1.1, batched_speedup=1.2)
        (failure,) = check_regression(broken, base)
        assert "events" in failure

        # No kernel section on either side: nothing to gate.
        assert check_regression({"shapes": []}, base) == []
        assert check_regression(ok, {"shapes": []}) == []


class TestSuiteEventsPerSec:
    def test_runner_surfaces_engine_speed(self, tmp_path):
        suite = ScenarioSuite(name="eps", lineups=("cubic",), duration=1.0)
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        first = runner.run(suite)
        assert first.total_events > 0
        assert first.events_per_sec > 0
        # A cache-served re-run simulated nothing.
        second = runner.run(suite)
        assert second.total_events == 0
        assert second.events_per_sec is None
