"""Tests for the preference-conditioned actor-critic (repro.rl.policy)."""

import numpy as np
import pytest

from repro.rl.nn import numerical_gradient
from repro.rl.policy import PreferenceActorCritic


def make_model(weight_dim=3, obs_dim=6, hidden=(8, 4), pref_hidden=5, seed=0):
    return PreferenceActorCritic(obs_dim=obs_dim, weight_dim=weight_dim, act_dim=1,
                                 hidden_sizes=hidden, pref_hidden=pref_hidden,
                                 rng=np.random.default_rng(seed))


class TestForward:
    def test_shapes(self):
        model = make_model()
        mean, value = model.forward(np.zeros((4, 6)), np.full((4, 3), 1 / 3))
        assert mean.shape == (4, 1)
        assert value.shape == (4,)

    def test_single_sample_promotion(self):
        model = make_model()
        mean, value = model.forward(np.zeros(6), np.full(3, 1 / 3))
        assert mean.shape == (1, 1)

    def test_weight_broadcast(self):
        model = make_model()
        m1, _ = model.forward(np.zeros((3, 6)), np.full((1, 3), 1 / 3))
        m2, _ = model.forward(np.zeros((3, 6)), np.full((3, 3), 1 / 3))
        np.testing.assert_allclose(m1, m2)

    def test_missing_weights_raises(self):
        model = make_model()
        with pytest.raises(ValueError, match="weights"):
            model.forward(np.zeros((1, 6)), None)

    def test_weightless_model_ignores_preferences(self):
        model = make_model(weight_dim=0)
        mean, value = model.forward(np.zeros((2, 6)))
        assert mean.shape == (2, 1)
        assert model.pref_net is None

    def test_different_weights_change_output(self):
        """The preference sub-network must influence the policy input."""
        model = make_model(seed=3)
        obs = np.random.default_rng(0).normal(size=(1, 6))
        m1, _ = model.forward(obs, np.array([[0.8, 0.1, 0.1]]))
        m2, _ = model.forward(obs, np.array([[0.1, 0.8, 0.1]]))
        assert not np.allclose(m1, m2)


class TestBackward:
    def test_actor_gradcheck(self):
        model = make_model(hidden=(5,), pref_hidden=3, seed=1)
        rng = np.random.default_rng(2)
        obs = rng.normal(size=(4, 6))
        w = np.abs(rng.normal(size=(4, 3))) + 0.1

        def loss():
            mean, value = model.forward(obs, w)
            return 0.5 * float(np.sum(mean ** 2)) + 0.5 * float(np.sum(value ** 2))

        mean, value = model.forward(obs, w)
        model.zero_grad()
        model.backward(mean, value)
        analytic = {n: p.grad.copy() for n, p in model.parameters().items()}
        numeric = numerical_gradient(loss, model.parameters())
        for name in analytic:
            if name == "log_std":
                continue  # not part of this loss
            np.testing.assert_allclose(analytic[name], numeric[name],
                                       atol=1e-5, rtol=1e-3, err_msg=name)

    def test_log_std_gradient_passthrough(self):
        model = make_model()
        model.forward(np.zeros((1, 6)), np.full((1, 3), 1 / 3))
        model.zero_grad()
        model.backward(np.zeros((1, 1)), np.zeros(1), d_log_std=np.array([0.7]))
        assert model.log_std.grad[0] == pytest.approx(0.7)

    def test_pref_net_receives_gradient(self):
        model = make_model(seed=5)
        rng = np.random.default_rng(6)
        obs = rng.normal(size=(3, 6))
        w = np.abs(rng.normal(size=(3, 3))) + 0.1
        mean, value = model.forward(obs, w)
        model.zero_grad()
        model.backward(np.ones_like(mean), np.ones_like(value))
        pref_grads = [p.grad for n, p in model.parameters().items()
                      if n.startswith("pref.")]
        assert any(np.any(g != 0) for g in pref_grads)


class TestActing:
    def test_deterministic_returns_mean(self):
        model = make_model()
        obs = np.ones(6)
        w = np.full(3, 1 / 3)
        action, log_prob, value = model.act(obs, w, np.random.default_rng(0),
                                            deterministic=True)
        mean, _ = model.forward(obs, w)
        np.testing.assert_allclose(action, mean[0])

    def test_stochastic_varies(self):
        model = make_model()
        rng = np.random.default_rng(0)
        w = np.full(3, 1 / 3)
        actions = {float(model.act(np.ones(6), w, rng)[0][0]) for _ in range(5)}
        assert len(actions) > 1

    def test_log_prob_is_finite(self):
        model = make_model()
        _, log_prob, _ = model.act(np.ones(6), np.full(3, 1 / 3),
                                   np.random.default_rng(1))
        assert np.isfinite(log_prob)

    def test_value_matches_forward(self):
        model = make_model()
        w = np.full(3, 1 / 3)
        _, _, value = model.act(np.ones(6), w, np.random.default_rng(0),
                                deterministic=True)
        assert value == pytest.approx(model.value(np.ones(6), w))


class TestCloneAndState:
    def test_clone_identical_outputs(self):
        model = make_model(seed=9)
        twin = model.clone()
        obs = np.random.default_rng(1).normal(size=(2, 6))
        w = np.full((2, 3), 1 / 3)
        np.testing.assert_allclose(model.forward(obs, w)[0], twin.forward(obs, w)[0])

    def test_clone_is_independent(self):
        model = make_model()
        twin = model.clone()
        twin.log_std.value[...] = 99.0
        assert model.log_std.value[0] != 99.0

    def test_architecture_roundtrip(self):
        model = make_model(hidden=(16, 8), pref_hidden=7)
        arch = model.architecture()
        rebuilt = PreferenceActorCritic(**arch)
        rebuilt.load_state_dict(model.state_dict())
        obs = np.ones((1, 6))
        w = np.full((1, 3), 1 / 3)
        np.testing.assert_allclose(model.forward(obs, w)[0],
                                   rebuilt.forward(obs, w)[0])

    def test_parameters_include_all_blocks(self):
        model = make_model()
        names = set(model.parameters())
        assert "log_std" in names
        assert any(n.startswith("pref.") for n in names)
        assert any(n.startswith("actor.") for n in names)
        assert any(n.startswith("critic.") for n in names)
