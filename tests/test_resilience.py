"""Resilient sweep runtime: retries, crash recovery, checkpoints.

Four layers, mirroring ``repro.eval.resilience``:

* **RetryPolicy** -- validation, deterministic seeded backoff.
* **ResilientPool** -- crash/timeout recovery with the chaos hook:
  deterministic task exceptions are never retried, crashed workers
  are respawned and the task requeued within budget, exhausted
  budgets come back as error results.
* **SweepCheckpoint** -- journal round trips, manifest binding, and
  corruption handling (torn tails and tampered lines are dropped).
* **ParallelRunner integration** -- failure budgets become error
  rows, corrupt cache entries are quarantined and recomputed, and a
  killed-then-resumed sweep is row-for-row identical to an
  uninterrupted run.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.eval.parallel import ParallelRunner, ScenarioError
from repro.eval.resilience import (
    IDEMPOTENT_TASKS,
    MI_FIELDS,
    RECORD_FIELDS,
    ResilientPool,
    RetryPolicy,
    SweepCheckpoint,
    record_from_json,
    record_to_json,
    records_digest,
    set_chaos_hook,
)
from repro.eval.runner import EvalNetwork
from repro.eval.scenarios import Scenario, ScenarioSuite

NET = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=10.0, buffer_bdp=1.0)

#: Four cells: small enough for CI, wide enough that a killed batch
#: leaves journaled survivors to resume from.
SMALL = ScenarioSuite(name="resume", lineups=("cubic", "vegas"),
                      seeds=(0, 1), duration=1.0)


@pytest.fixture(autouse=True)
def _no_leaked_chaos_hook():
    yield
    set_chaos_hook(None)


# --- module-level task functions (forked into pool workers) -----------------


def _log_and_double(arg):
    value, log = arg
    with open(log, "a") as fh:
        fh.write(f"{value}\n")
    return value * 2


def _log_and_fail(arg):
    value, log = arg
    with open(log, "a") as fh:
        fh.write(f"{value}\n")
    raise ValueError(f"deterministic failure for {value}")


def _sleep_forever(arg):
    time.sleep(60.0)
    return arg


def _kill_once(marker: Path):
    """Chaos hook: hard-kill the first worker that probes, then behave."""
    def hook(arg):
        if not marker.exists():
            marker.write_text("killed")
            os._exit(17)
    return hook


def _always_kill(target):
    """Chaos hook: hard-kill every worker handed ``target``."""
    def hook(arg):
        value = arg[0] if isinstance(arg, tuple) else arg
        if value == target:
            os._exit(17)
    return hook


def _kill_batch_once(marker: Path, target):
    """Chaos hook: kill the worker holding batch ``target``, once."""
    def hook(arg):
        if arg == target and not marker.exists():
            marker.write_text("killed")
            os._exit(17)
    return hook


class TestRetryPolicy:
    @pytest.mark.parametrize("bad", [
        dict(max_attempts=0),
        dict(backoff_s=-0.1),
        dict(backoff_factor=0.5),
        dict(jitter_frac=-0.1),
        dict(jitter_frac=1.0),
    ])
    def test_bad_policies_fail_at_construction(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_delays_are_seeded_and_bounded(self):
        policy = RetryPolicy(backoff_s=0.5, backoff_factor=2.0,
                             jitter_frac=0.1, seed=3)
        a = [policy.delay(k, np.random.default_rng(3)) for k in (1, 2, 3)]
        b = [policy.delay(k, np.random.default_rng(3)) for k in (1, 2, 3)]
        assert a == b  # same seed, same jitter, same delays
        for failures, delay in enumerate(a, start=1):
            base = 0.5 * 2.0 ** (failures - 1)
            assert base * 0.9 <= delay <= base * 1.1

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(backoff_s=0.25, backoff_factor=3.0,
                             jitter_frac=0.0)
        rng = np.random.default_rng(0)
        assert [policy.delay(k, rng) for k in (1, 2, 3)] == [
            0.25, 0.75, 2.25]

    def test_allowlist_entries_are_justified(self):
        # The live mirror of replint's resilience-idempotent-retry rule.
        assert IDEMPOTENT_TASKS
        for entry, justification in IDEMPOTENT_TASKS:
            assert entry.startswith("repro.")
            assert justification.strip()


class TestResilientPool:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ResilientPool(0, _log_and_double)

    def test_empty_task_list_yields_nothing(self):
        pool = ResilientPool(2, _log_and_double)
        assert list(pool.execute([])) == []

    def test_happy_path_unordered_results(self, tmp_path):
        log = tmp_path / "log"
        pool = ResilientPool(2, _log_and_double)
        tasks = [(i, (i, str(log)), None) for i in range(6)]
        out = dict()
        for task_id, result, error in pool.execute(tasks):
            assert error is None
            out[task_id] = result
        assert out == {i: 2 * i for i in range(6)}
        assert sorted(log.read_text().split()) == [str(i) for i in range(6)]

    def test_deterministic_exception_is_never_retried(self, tmp_path):
        log = tmp_path / "log"
        pool = ResilientPool(1, _log_and_fail,
                             retry=RetryPolicy(max_attempts=3,
                                               backoff_s=0.01))
        [(task_id, result, error)] = list(
            pool.execute([(0, (7, str(log)), None)]))
        assert result is None
        assert "ValueError: deterministic failure for 7" in error
        # Exactly one attempt: a seeded cell that failed once fails
        # identically every time, so retrying would only burn time.
        assert log.read_text() == "7\n"

    def test_crashed_worker_respawned_and_task_retried(self, tmp_path):
        marker = tmp_path / "killed"
        log = tmp_path / "log"
        set_chaos_hook(_kill_once(marker))
        pool = ResilientPool(1, _log_and_double,
                             retry=RetryPolicy(max_attempts=3,
                                               backoff_s=0.02, seed=1))
        out = dict()
        for task_id, result, error in pool.execute(
                [(i, (i, str(log)), None) for i in range(3)]):
            assert error is None, error
            out[task_id] = result
        assert out == {0: 0, 1: 2, 2: 4}
        assert marker.exists()  # the chaos kill actually fired

    def test_crash_budget_exhaustion_is_an_error_result(self, tmp_path):
        log = tmp_path / "log"
        set_chaos_hook(_always_kill(1))
        pool = ResilientPool(2, _log_and_double,
                             retry=RetryPolicy(max_attempts=2,
                                               backoff_s=0.02, seed=0))
        results = {task_id: (result, error)
                   for task_id, result, error in pool.execute(
                       [(i, (i, str(log)), None) for i in range(3)])}
        assert results[0] == (0, None)
        assert results[2] == (4, None)
        result, error = results[1]
        assert result is None
        assert error.count("WorkerCrash") == 2  # both attempts recorded

    def test_timeout_kills_and_reports(self, tmp_path):
        pool = ResilientPool(1, _sleep_forever,
                             retry=RetryPolicy(max_attempts=1))
        t0 = time.perf_counter()
        [(task_id, result, error)] = list(
            pool.execute([(0, 0, 0.3)]))
        assert result is None
        assert "CellTimeout" in error and "0.300s" in error
        assert time.perf_counter() - t0 < 10.0  # killed, not waited out


def _fake_record(k: int):
    payload = {name: float(k) for name in RECORD_FIELDS}
    payload["flow_id"] = k
    payload["scheme"] = f"scheme{k}"
    payload["records"] = [[float(k + j)] * len(MI_FIELDS) for j in range(2)]
    return record_from_json(payload)


class TestSweepCheckpoint:
    FPS = ["fp0", "fp1", "fp2"]

    def test_record_requires_resume(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "j.jsonl")
        with pytest.raises(RuntimeError, match="resume"):
            ck.record(0, "fp0", [], 0.1, 1)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        ck = SweepCheckpoint(path)
        assert ck.resume(self.FPS) == {}
        ck.record(1, "fp1", [_fake_record(4)], 1.25, 777)
        ck.close()
        restored = SweepCheckpoint(path).resume(self.FPS)
        assert set(restored) == {1}
        records, elapsed, events = restored[1]
        assert (elapsed, events) == (1.25, 777)
        assert [record_to_json(r) for r in records] == [
            record_to_json(_fake_record(4))]

    def test_manifest_mismatch_resets_the_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        ck = SweepCheckpoint(path)
        ck.resume(self.FPS)
        ck.record(0, "fp0", [_fake_record(0)], 0.5, 10)
        ck.close()
        # A different suite: the old cells must not leak into it...
        assert SweepCheckpoint(path).resume(["other0", "other1"]) == {}
        # ...and the reset is destructive: the original suite now
        # starts over too (the journal was rebound).
        assert SweepCheckpoint(path).resume(self.FPS) == {}

    def test_torn_tail_is_dropped_and_rewritten(self, tmp_path):
        path = tmp_path / "j.jsonl"
        ck = SweepCheckpoint(path)
        ck.resume(self.FPS)
        ck.record(0, "fp0", [_fake_record(0)], 0.5, 10)
        ck.record(1, "fp1", [_fake_record(1)], 0.6, 20)
        ck.close()
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "idx": 2, "records"')  # torn write
        restored = SweepCheckpoint(path).resume(self.FPS)
        assert set(restored) == {0, 1}
        assert '"records"\n' not in path.read_text()  # tail rewritten away

    def test_tampered_line_invalidates_itself_and_the_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        ck = SweepCheckpoint(path)
        ck.resume(self.FPS)
        ck.record(0, "fp0", [_fake_record(0)], 0.5, 10)
        ck.record(1, "fp1", [_fake_record(1)], 0.6, 20)
        ck.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"elapsed": 0.5', '"elapsed": 9.9')
        path.write_text("\n".join(lines) + "\n")
        # Checksum catches the edit; everything after the first bad
        # line is untrusted too (append-only chain semantics).
        assert SweepCheckpoint(path).resume(self.FPS) == {}

    def test_wrong_fingerprint_is_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        ck = SweepCheckpoint(path)
        ck.resume(self.FPS)
        ck.record(0, "not-fp0", [_fake_record(0)], 0.5, 10)
        ck.close()
        assert SweepCheckpoint(path).resume(self.FPS) == {}


class TestCacheIntegrity:
    def _scenario(self):
        return Scenario(name="integrity", network=NET, flows=("cubic",),
                        duration=1.0)

    def test_checksum_mismatch_quarantines_and_recomputes(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = self._scenario()
        runner.run([scenario])
        path = runner.cache._path(scenario.fingerprint())
        payload = json.loads(path.read_text())
        payload["records"][0]["mean_rtt"] = 999.0  # bit rot, sha now stale
        path.write_text(json.dumps(payload))
        outcome = runner.run([scenario])
        assert outcome.cache_misses == 1  # recomputed, not served corrupt
        assert path.with_suffix(".quarantined").exists()
        # The recomputed entry is healthy again: third run is a hit.
        assert runner.run([scenario]).cache_hits == 1

    def test_non_object_entry_is_quarantined(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = self._scenario()
        runner.run([scenario])
        path = runner.cache._path(scenario.fingerprint())
        path.write_text("[1, 2, 3]")
        assert runner.run([scenario]).cache_misses == 1
        assert path.with_suffix(".quarantined").exists()

    def test_clear_removes_quarantined_entries(self, tmp_path):
        runner = ParallelRunner(n_workers=1, cache_dir=tmp_path)
        scenario = self._scenario()
        runner.run([scenario])
        path = runner.cache._path(scenario.fingerprint())
        path.write_text("{broken")
        runner.run([scenario])  # quarantines, recomputes, re-puts
        assert runner.cache.clear() == 2  # fresh entry + quarantined one
        assert not list(tmp_path.glob("*"))


def _failing_suite():
    return ScenarioSuite(name="bad", lineups=("cubic", "no-such-scheme",
                                              "vegas"), duration=1.0)


class TestFailureBudget:
    def test_runner_validates_knobs(self):
        with pytest.raises(ValueError):
            ParallelRunner(max_failures=-1)
        with pytest.raises(ValueError):
            ParallelRunner(cell_timeout=0.0)
        with pytest.raises(TypeError):
            ParallelRunner(retry="twice")

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_failures_within_budget_become_error_rows(self, n_workers):
        runner = ParallelRunner(n_workers=n_workers, use_cache=False,
                                max_failures=1, batch_size=1)
        outcome = runner.run(_failing_suite())  # must NOT raise
        assert len(outcome) == 3
        bad = [r for r in outcome if r.error is not None]
        assert len(bad) == 1
        assert bad[0].scenario.lineup == "no-such-scheme"
        assert bad[0].records == []
        rows = [row for row in outcome.table if row["error"] is not None]
        assert rows and all(row["throughput_mbps"] is None
                            and row["utilization"] is None for row in rows)
        healthy = [row for row in outcome.table if row["error"] is None]
        assert len(healthy) == 2
        assert all(row["throughput_mbps"] is not None for row in healthy)

    def test_budget_exhaustion_aborts(self):
        runner = ParallelRunner(n_workers=1, use_cache=False, max_failures=0)
        with pytest.raises(ScenarioError, match="budget max_failures=0"):
            runner.run(_failing_suite())


class TestResilientDispatchIdentity:
    def test_retry_and_timeout_dispatch_matches_classic(self):
        def digests(**kwargs):
            outcome = ParallelRunner(use_cache=False, **kwargs).run(SMALL)
            return [(records_digest(r.records), r.events) for r in outcome]

        classic = digests(n_workers=2, batch_size=1)
        resilient = digests(n_workers=2, batch_size=1,
                            retry=RetryPolicy(max_attempts=2),
                            cell_timeout=120.0)
        serial = digests(n_workers=1)
        assert classic == resilient == serial


class TestCheckpointResume:
    def test_env_var_supplies_default_path(self, tmp_path, monkeypatch):
        journal = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_SWEEP_CHECKPOINT", str(journal))
        runner = ParallelRunner(n_workers=1, use_cache=False)
        assert runner.checkpoint_path == journal
        runner.run([Scenario(name="env", network=NET, flows=("cubic",),
                             duration=1.0)])
        assert journal.exists()

    def test_completed_run_restores_rows_bit_identically(self, tmp_path):
        journal = tmp_path / "ck.jsonl"
        kwargs = dict(n_workers=2, use_cache=False, checkpoint=journal,
                      batch_size=1)
        first = ParallelRunner(**kwargs).run(SMALL)
        second = ParallelRunner(**kwargs).run(SMALL)
        assert [records_digest(r.records) for r in second] == \
            [records_digest(r.records) for r in first]
        # Restored, not re-executed: the journal hands back the
        # original wall times and event counts (a re-run could never
        # reproduce elapsed bit-for-bit), and no cell is "cached".
        assert [r.elapsed for r in second] == [r.elapsed for r in first]
        assert [r.events for r in second] == [r.events for r in first]
        assert all(not r.cached for r in second)

    def test_killed_then_resumed_matches_uninterrupted(self, tmp_path):
        reference = ParallelRunner(n_workers=1, use_cache=False).run(SMALL)
        ref_digests = [records_digest(r.records) for r in reference]

        journal = tmp_path / "sweep.jsonl"
        marker = tmp_path / "killed"
        kwargs = dict(n_workers=2, use_cache=False, batch_size=1,
                      checkpoint=journal, retry=RetryPolicy(max_attempts=1),
                      max_failures=4)
        set_chaos_hook(_kill_batch_once(marker, 2))
        try:
            first = ParallelRunner(**kwargs).run(SMALL)
        finally:
            set_chaos_hook(None)
        assert marker.exists()
        killed = [r for r in first if r.error is not None]
        assert len(killed) == 1 and "WorkerCrash" in killed[0].error

        # Resume: the journaled survivors are restored verbatim, only
        # the killed cell re-executes, and the table is row-for-row
        # what the uninterrupted run produced.
        second = ParallelRunner(**kwargs).run(SMALL)
        assert all(r.error is None for r in second)
        assert [records_digest(r.records) for r in second] == ref_digests
        survivors = [i for i, r in enumerate(first.results)
                     if r.error is None]
        for idx in survivors:
            assert second.results[idx].elapsed == first.results[idx].elapsed
            assert second.results[idx].events == first.results[idx].events

        # Third run: everything is journaled now, nothing re-executes.
        third = ParallelRunner(**kwargs).run(SMALL)
        assert [r.elapsed for r in third] == [r.elapsed for r in second]
        assert [records_digest(r.records) for r in third] == ref_digests
