"""Kernel engine (repro.netsim.kernel): bit-identity, pool mechanics,
engine-axis plumbing.

The kernel's contract is *bit-identity*: same event stream, same RNG
draw order, same floats as the reference engine, on every perf shape
under both transit modes -- solo, sliced through the ``SimState``
stepping interface, and interleaved through ``BatchRunner``.  These
tests pin that contract with full-result digests (the same
serialization the result cache persists) plus the struct-of-arrays
plumbing underneath it: freelist allocation/recycle determinism,
in-place growth, the read-only ``PacketView`` flyweight, and the
``engine=`` scenario axis that selects the core.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.eval.batch import BatchRunner
from repro.eval.parallel import ParallelRunner, _record_to_json
from repro.eval.perf import PERF_SHAPES, perf_scenarios
from repro.eval.runner import EvalNetwork
from repro.eval.scenarios import (
    Scenario,
    ScenarioSuite,
    build_scenario_simulation,
)
from repro.netsim import ENGINES, Simulation, engine_class
from repro.netsim.kernel import (
    KERNEL_COMPILED,
    POOL_FIELDS,
    KernelSimulation,
    PacketPool,
    PacketView,
)
from repro.netsim.link import Link
from repro.netsim.network import FlowSpec
from repro.netsim.packet import Packet
from repro.netsim.sender import ExternalRateController
from repro.netsim.traces import ConstantTrace

DURATION = 1.25
SEED = 3


def digest(records) -> str:
    """Same serialization the golden-trace tests and result cache use."""
    rows = [_record_to_json(r) for r in records]
    return hashlib.sha256(json.dumps(rows, sort_keys=True).encode()).hexdigest()


def build_pair(shape: str, transit: str):
    """(reference sims, kernel sims) of one perf shape, same seeding."""
    ref = [build_scenario_simulation(s)
           for s in perf_scenarios(shape, transit=transit, duration=DURATION,
                                   seed=SEED)]
    ker = [build_scenario_simulation(s)
           for s in perf_scenarios(shape, transit=transit, duration=DURATION,
                                   seed=SEED, engine="kernel")]
    return ref, ker


def tiny_kernel_sim(duration=1.0, **spec_kwargs) -> KernelSimulation:
    link = Link(ConstantTrace(100.0), delay=0.01, queue_size=50,
                rng=np.random.default_rng(0))
    spec = FlowSpec(ExternalRateController(50.0), **spec_kwargs)
    return KernelSimulation(link, [spec], duration=duration, seed=1)


SHAPE_TRANSITS = [(shape, transit) for shape in PERF_SHAPES
                  for transit in ("event", "eager")]


class TestBitIdentity:
    @pytest.mark.parametrize("shape,transit", SHAPE_TRANSITS)
    def test_solo_digest_identical(self, shape, transit):
        ref, ker = build_pair(shape, transit)
        for r, k in zip(ref, ker):
            assert isinstance(k, KernelSimulation)
            assert digest(r.run_all()) == digest(k.run_all())
            assert r.events_processed == k.events_processed

    @pytest.mark.parametrize("transit", ("event", "eager"))
    def test_stepped_slicing_identical(self, transit):
        # Mixed step_events/step_until slicing must equal one
        # monolithic run -- the BatchRunner resumability contract.
        (ref_sim,), (ker_sim,) = build_pair("single-bottleneck", transit)
        ref_records = ref_sim.run_all()
        state = ker_sim.state
        horizon = 0.0
        while not state.done:
            state.step_events(97)
            horizon += 0.2
            state.step_until(min(horizon, ker_sim.duration))
        assert digest(ref_records) == digest(ker_sim.run_all())
        assert ref_sim.events_processed == ker_sim.events_processed

    def test_batched_matches_reference_cells(self):
        suite = ScenarioSuite(name="kernel-batch",
                              lineups={"duo": ("cubic", "bbr")},
                              engines=("reference", "kernel"),
                              duration=1.5, seeds=(7,))
        cells = BatchRunner(slice_seconds=0.3).run(suite.expand())
        by_name = {}
        for cell in cells:
            assert cell.error is None, cell.error
            by_name[cell.scenario.name] = (digest(cell.records), cell.events)
        kernel_names = [n for n in by_name if "engine=kernel" in n]
        assert kernel_names
        for name in kernel_names:
            twin = name.replace("engine=kernel", "engine=reference")
            assert by_name[name] == by_name[twin], name


class TestEventsAccounting:
    def test_result_rows_report_identical_events(self):
        # The events column of ScenarioResult rows -- the events/sec
        # numerator -- must not depend on the engine that produced it.
        suite = ScenarioSuite(name="kernel-events", lineups=("cubic",),
                              engines=("reference", "kernel"), duration=1.0)
        outcome = ParallelRunner(n_workers=1, use_cache=False).run(suite)
        by_name = {r.scenario.name: r.events for r in outcome.results}
        kernel_names = [n for n in by_name if "engine=kernel" in n]
        assert kernel_names
        for name in kernel_names:
            twin = name.replace("engine=kernel", "engine=reference")
            assert by_name[name] > 0
            assert by_name[name] == by_name[twin], name

    def test_stepping_and_run_agree_on_counts(self):
        whole = tiny_kernel_sim()
        whole.run_all()
        stepped = tiny_kernel_sim()
        while not stepped.state.done:
            stepped.state.step_events(13)
        stepped.run_all()
        assert whole.events_processed == stepped.events_processed > 100


class TestPacketPool:
    def test_fields_mirror_packet_slots(self):
        # Mirrors replint's compiled-pool-fields rule at runtime.
        assert POOL_FIELDS == Packet.__slots__

    def test_alloc_order_and_lifo_recycle(self):
        pool = PacketPool(capacity=4)
        assert [pool.alloc(0, i, 0.0, 1500) for i in range(3)] == [0, 1, 2]
        pool.release(1)
        pool.release(0)
        # LIFO: the most recently released slot is reused first.
        assert pool.alloc(0, 9, 1.0, 1500) == 0
        assert pool.alloc(0, 10, 1.0, 1500) == 1
        assert pool.in_use() == 3

    def test_exhaustion_grows_in_place(self):
        pool = PacketPool(capacity=2)
        send_time = pool.send_time
        free = pool.free
        assert [pool.alloc(1, i, float(i), 100) for i in range(5)] == \
            [0, 1, 2, 3, 4]
        assert pool.capacity == 8  # doubled twice: 2 -> 4 -> 8
        # Growth extends, never rebuilds: hoisted references stay valid.
        assert pool.send_time is send_time
        assert pool.free is free
        assert send_time[:5] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert pool.in_use() == 5
        assert all(len(getattr(pool, f)) == 8 for f in POOL_FIELDS)

    def test_alloc_resets_packet_defaults(self):
        pool = PacketPool(capacity=1)
        idx = pool.alloc(0, 0, 0.0, 10)
        pool.dropped[idx] = True
        pool.arrival_time[idx] = 4.2
        pool.hop[idx] = 3
        pool.release(idx)
        again = pool.alloc(1, 5, 1.5, 20)
        assert again == idx
        view = PacketView(pool, again)
        assert view.dropped is False
        assert view.arrival_time is None
        assert view.hop == 0 and view.seq == 5

    def test_recycle_order_is_deterministic(self):
        def pool_state():
            (scenario,) = perf_scenarios("single-bottleneck", duration=0.75,
                                         seed=5, engine="kernel")
            sim = build_scenario_simulation(scenario)
            sim.run_all()
            return sim._pool.capacity, list(sim._pool.free)

        assert pool_state() == pool_state()

    def test_field_array(self):
        pool = PacketPool(capacity=3)
        pool.alloc(7, 1, 0.5, 100)
        arr = pool.field_array("send_time")
        assert arr.dtype == np.float64 and arr[0] == 0.5
        assert pool.field_array("arrival_time").dtype == object
        with pytest.raises(KeyError, match="unknown pool field"):
            pool.field_array("checksum")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            PacketPool(capacity=0)


class TestPacketView:
    def test_read_only(self):
        pool = PacketPool(capacity=1)
        view = PacketView(pool, pool.alloc(0, 3, 1.0, 1500))
        with pytest.raises(AttributeError):
            view.send_time = 9.0
        with pytest.raises(AttributeError):
            view.bogus = 1

    def test_mirrors_packet_semantics(self):
        pool = PacketPool(capacity=1)
        idx = pool.alloc(2, 7, 1.0, 1500)
        pool.arrival_time[idx] = 1.25
        pool.ack_time[idx] = 1.5
        view = PacketView(pool, idx)
        pkt = Packet(2, 7, 1.0, 1500, arrival_time=1.25, ack_time=1.5)
        assert view.rtt == pkt.rtt == 0.5
        for field in POOL_FIELDS:
            assert getattr(view, field) == getattr(pkt, field), field
        assert "acked" in repr(view)

    def test_retarget_by_index(self):
        pool = PacketPool(capacity=2)
        a = pool.alloc(0, 1, 0.5, 100)
        b = pool.alloc(0, 2, 0.75, 100)
        view = PacketView(pool, a)
        assert view.seq == 1
        view._idx = b
        assert view.seq == 2 and view.send_time == 0.75


class TestEngineAxis:
    def test_engine_class_resolution(self):
        assert ENGINES == ("reference", "kernel")
        assert engine_class() is Simulation
        assert engine_class("reference") is Simulation
        assert engine_class("kernel") is KernelSimulation
        with pytest.raises(ValueError, match="unknown engine"):
            engine_class("turbo")

    def test_scenario_validates_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Scenario(name="bad", network=EvalNetwork(), flows=("cubic",),
                     engine="turbo")

    def test_fingerprint_differs_by_engine(self):
        (ref,) = perf_scenarios("single-bottleneck", duration=1.0)
        (ker,) = perf_scenarios("single-bottleneck", duration=1.0,
                                engine="kernel")
        assert ref.engine == "reference" and ker.engine == "kernel"
        assert ref.fingerprint() != ker.fingerprint()

    def test_suite_expansion_names_engine_axis(self):
        suite = ScenarioSuite(name="ax", lineups=("cubic",),
                              engines=("reference", "kernel"))
        names = [s.name for s in suite.expand()]
        assert len(names) == 2
        assert any("engine=kernel" in n for n in names)
        assert any("engine=reference" in n for n in names)

    def test_build_resolves_engine_class(self):
        (scenario,) = perf_scenarios("single-bottleneck", duration=0.5,
                                     engine="kernel")
        sim = build_scenario_simulation(scenario)
        assert type(sim) is KernelSimulation


class TestKernelGuards:
    def test_keep_packets_rejected(self):
        link = Link(ConstantTrace(100.0), delay=0.01, queue_size=50,
                    rng=np.random.default_rng(0))
        spec = FlowSpec(ExternalRateController(50.0), keep_packets=True)
        with pytest.raises(ValueError, match="keep_packets"):
            KernelSimulation(link, [spec], duration=1.0)

    def test_hot_kinds_refuse_table_dispatch(self):
        # Driving a kernel sim through the base SimState loop would
        # mis-read pool indices as Packet objects; the table slots for
        # the fused kinds fail loudly instead.
        sim = tiny_kernel_sim()
        with pytest.raises(RuntimeError, match="fused"):
            sim._k_fused_only(sim.flows[0], None)

    def test_compiled_flag_is_bool(self):
        assert isinstance(KERNEL_COMPILED, bool)
