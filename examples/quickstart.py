"""Quickstart: one MOCC model, three different application objectives.

Loads (or trains, on first run) the offline multi-objective model and
runs it on the same bottleneck under three weight vectors, showing how
a single model trades throughput against latency on demand -- the
paper's core claim.

Run:  python examples/quickstart.py
"""

from repro.core.agent import MoccController
from repro.core.weights import BALANCE_WEIGHTS, LATENCY_WEIGHTS, THROUGHPUT_WEIGHTS
from repro.eval.runner import EvalNetwork, run_scheme
from repro.models import default_zoo


def main():
    print("Loading the offline-trained MOCC model (trains on first run)...")
    agent = default_zoo().mocc_offline(quality="fast")

    network = EvalNetwork(bandwidth_mbps=20.0, one_way_ms=20.0, buffer_bdp=2.0)
    print(f"\nBottleneck: {network.bandwidth_mbps} Mbps, "
          f"{network.one_way_ms} ms one-way, {network.queue_size()}-packet buffer\n")

    print(f"{'objective':<28}{'utilization':>12}{'RTT ratio':>12}{'loss':>9}")
    for name, weights in [
            ("throughput  <0.8,0.1,0.1>", THROUGHPUT_WEIGHTS),
            ("balance     <.34,.33,.33>", BALANCE_WEIGHTS),
            ("latency     <0.1,0.8,0.1>", LATENCY_WEIGHTS)]:
        controller = MoccController(agent, weights,
                                    initial_rate=network.bottleneck_pps / 3)
        record = run_scheme(controller, network, duration=20.0, seed=1)
        print(f"{name:<28}{record.mean_utilization:>12.3f}"
              f"{record.latency_ratio:>12.3f}{record.loss_rate:>9.4f}")

    print("\nOne model, three behaviours: higher w_thr trades queueing delay "
          "for bandwidth;\nhigher w_lat keeps the bottleneck queue short.")


if __name__ == "__main__":
    main()
