"""Visualise the fast-traversal training order (Fig. 4 / Appendix B).

Prints the omega=36 landmark grid as an ASCII simplex, numbering each
landmark by its position in the neighbourhood-sorted training order:
the three bootstrap objectives come first and the traversal expands
outward from them, rotating between the three regions.

Run:  python examples/objective_traversal.py
"""

import numpy as np

from repro.config import BOOTSTRAP_OBJECTIVES
from repro.core.sorting import neighborhood_sort
from repro.core.weights import simplex_grid


def main():
    grid = simplex_grid(10)
    order = neighborhood_sort(grid, BOOTSTRAP_OBJECTIVES)
    rank = {idx: pos for pos, idx in enumerate(order)}
    bootstraps = {tuple(np.round(b, 6)) for b in BOOTSTRAP_OBJECTIVES}

    print("omega = 36 landmark objectives (step 0.1); numbers give the")
    print("training order, '*' marks the bootstrap pivots.\n")
    print("w_thr rises downward; w_lat rises rightward; w_loss = remainder\n")

    ints = np.rint(grid * 10).astype(int)
    index = {(i, j): k for k, (i, j, _) in enumerate(ints)}
    for i in range(1, 9):  # w_thr = 0.1 .. 0.8
        cells = []
        for j in range(1, 10 - i):
            k = index.get((i, j))
            if k is None:
                continue
            marker = "*" if tuple(np.round(grid[k], 6)) in bootstraps else " "
            cells.append(f"{rank[k]:2d}{marker}")
        print(f"w_thr={i/10:.1f}  " + " ".join(cells))

    print("\nfirst ten visits:")
    for pos in range(10):
        w = grid[order[pos]]
        tag = "  <- bootstrap" if tuple(np.round(w, 6)) in bootstraps else ""
        print(f"  {pos:2d}: <{w[0]:.1f}, {w[1]:.1f}, {w[2]:.1f}>{tag}")


if __name__ == "__main__":
    main()
