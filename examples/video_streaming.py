"""Application demo: video streaming over MOCC vs kernel heuristics.

Reproduces the Fig. 8 setup at example scale: an MPC-based ABR client
streams chunked video over each transport on a fluctuating link; the
transport that delivers more (and steadier) throughput earns more
top-quality chunks.

Run:  python examples/video_streaming.py
"""

from repro.apps.video import BITRATES_MBPS, VideoSession
from repro.baselines import BBR, Cubic, Vegas
from repro.core.agent import MoccController
from repro.core.weights import THROUGHPUT_WEIGHTS
from repro.eval.runner import EvalNetwork, run_scheme
from repro.models import default_zoo
from repro.netsim.traces import RandomWalkTrace, mbps_to_pps


def main():
    agent = default_zoo().mocc_offline(quality="fast")
    network = EvalNetwork(
        bandwidth_mbps=8.0, one_way_ms=25.0, buffer_bdp=2.0,
        trace=RandomWalkTrace(mbps_to_pps(3.0), mbps_to_pps(8.0),
                              interval=2.0, step=0.25, horizon=120.0, seed=5))
    session = VideoSession()
    start = network.bottleneck_pps / 3

    print("Streaming 20 chunks over a 3-8 Mbps fluctuating link...\n")
    print(f"{'scheme':<8}{'thr Mbps':>10}{'mean quality':>14}"
          f"{'rebuffer s':>12}   chunks per level 0..5")
    for name, controller in [
            ("MOCC", MoccController(agent, THROUGHPUT_WEIGHTS, initial_rate=start)),
            ("CUBIC", Cubic()),
            ("BBR", BBR(initial_rate=start)),
            ("Vegas", Vegas())]:
        record = run_scheme(controller, network, duration=90.0, seed=3)
        result = session.stream(record, n_chunks=20)
        counts = " ".join(f"{c:2d}" for c in result.quality_counts())
        print(f"{name:<8}{result.mean_throughput_mbps:>10.2f}"
              f"{result.mean_quality:>14.2f}{result.rebuffer_seconds:>12.2f}"
              f"   [{counts}]")
    print(f"\nquality ladder (Mbps): {BITRATES_MBPS}")


if __name__ == "__main__":
    main()
