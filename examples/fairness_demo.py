"""Fairness demo: staggered MOCC flows sharing one bottleneck (§6.4).

Three flows with the same weight vector join a 12 Mbps bottleneck at
0 s, 15 s and 30 s; the demo prints each flow's per-5-second share and
the Jain fairness index, showing convergence toward a fair allocation.

Run:  python examples/fairness_demo.py
"""

import numpy as np

from repro.core.agent import MoccController
from repro.core.weights import BALANCE_WEIGHTS
from repro.eval.metrics import jain_index
from repro.eval.runner import EvalNetwork, run_competition
from repro.models import default_zoo


def main():
    agent = default_zoo().mocc_offline(quality="fast")
    network = EvalNetwork(bandwidth_mbps=12.0, one_way_ms=20.0, buffer_bdp=1.0)
    controllers = [MoccController(agent, BALANCE_WEIGHTS,
                                  initial_rate=network.bottleneck_pps / 4, seed=i)
                   for i in range(3)]
    print("Three same-weight MOCC flows, arrivals at 0/15/30 s...\n")
    records = run_competition(controllers, network, duration=60.0,
                              start_times=[0.0, 15.0, 30.0], seed=6)

    print(f"{'window':<10}" + "".join(f"flow{i:<7}" for i in range(3)) + "jain")
    for lo in np.arange(0.0, 60.0, 5.0):
        hi = lo + 5.0
        rates = []
        for record in records:
            acked = sum(s.acked for s in record.records if lo <= s.start < hi)
            rates.append(acked / 5.0)
        active = [r for r in rates if r > 1.0]
        jain = jain_index(active) if len(active) >= 2 else float("nan")
        cells = "".join(f"{r:<11.0f}" for r in rates)
        print(f"{int(lo):>2d}-{int(hi):<6d} {cells}{jain:.3f}")

    print("\nAs flows join, the earlier flows yield bandwidth; same-weight "
          "MOCC flows\nconverge toward an even share (Jain index -> 1).")


if __name__ == "__main__":
    main()
