"""Online adaptation: a new application arrives with an unseen objective.

Demonstrates §4.3: the offline model already provides a moderate policy
for the unforeseen weight vector; a few PPO iterations of transfer
learning converge to its optimum; requirement replay (Eq. 6) keeps an
old application's performance intact throughout.

Run:  python examples/adapt_new_objective.py
"""

import numpy as np

from repro.config import BOOTSTRAP_OBJECTIVES, DEFAULT_TRAINING, TRAINING_RANGES
from repro.core.online import OnlineAdapter
from repro.core.weights import THROUGHPUT_WEIGHTS
from repro.models import default_zoo
from repro.rl.parallel import EnvSpec


def main():
    new_objective = np.array([0.45, 0.44, 0.11])  # not on the landmark grid
    old_objective = THROUGHPUT_WEIGHTS

    print("Loading the offline model and starting online adaptation...")
    agent = default_zoo().mocc_offline(quality="fast").clone()
    spec = EnvSpec(ranges=TRAINING_RANGES, max_steps=96, seed=5)
    adapter = OnlineAdapter(agent, spec, config=DEFAULT_TRAINING, seed=5)
    adapter.seed_replay([old_objective, *BOOTSTRAP_OBJECTIVES])

    trace = adapter.adapt(new_objective, iterations=12, eval_every=4,
                          old_weights=old_objective, use_replay=True)

    print(f"\nnew objective {np.round(new_objective, 2)}:")
    for i, reward in enumerate(trace.rewards):
        bar = "#" * int(reward / 2)
        print(f"  iter {i:2d}  reward {reward:6.1f}  {bar}")
    print(f"\ninitial reward   : {trace.initial_reward():.1f} "
          "(the offline model already interpolates a moderate policy)")
    print(f"converged at iter: {trace.convergence_iteration(smooth=3)} "
          "(99% of max reward gain)")
    retention = trace.old_objective_retention()
    print(f"old-app retention: {retention:.2f} "
          "(requirement replay prevents forgetting)")


if __name__ == "__main__":
    main()
