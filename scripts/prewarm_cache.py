"""Pre-train and cache every model the test/benchmark suite needs,
then pre-warm the scenario-result cache for the heavyweight suites.

Scenario results are memoized by content fingerprint
(:meth:`repro.eval.scenarios.Scenario.fingerprint`), so warming the
exact grids the benchmarks declare means a later benchmark run is
served from the cache instead of re-simulating.
"""
import time

from repro.core.weights import (
    LATENCY_WEIGHTS,
    RTC_WEIGHTS,
    THROUGHPUT_WEIGHTS,
    project_to_simplex,
)
from repro.eval.parallel import ParallelRunner
from repro.eval.sweeps import (
    FIG5_BENCH_BASE,
    FIG5_BENCH_DURATION,
    FIG5_BENCH_SCHEMES,
    FIG5_BENCH_SEED,
    FIG5_BENCH_SWEEPS,
    sweep_schemes,
)
from repro.models import default_zoo


def prewarm_models(zoo):
    jobs = [
        ("mocc fast", lambda: zoo.mocc_offline(quality="fast")),
        ("aurora thr fast", lambda: zoo.aurora("throughput", quality="fast")),
        ("aurora lat fast", lambda: zoo.aurora("latency", quality="fast")),
        ("mocc full", lambda: zoo.mocc_offline(quality="full")),
        ("aurora thr full", lambda: zoo.aurora("throughput", quality="full")),
        ("aurora lat full", lambda: zoo.aurora("latency", quality="full")),
        ("aurora rtc fast", lambda: zoo.aurora_for(RTC_WEIGHTS, tag="rtc", quality="fast")),
        ("aurora bulk fast", lambda: zoo.aurora_for(
            project_to_simplex([1.0, 0.0, 0.0]), tag="bulk", quality="fast")),
        ("enhanced aurora fast", lambda: zoo.enhanced_aurora(10, quality="fast")),
    ]
    for name, job in jobs:
        t0 = time.time()
        job()
        print(f"[prewarm] {name}: {time.time() - t0:.1f}s", flush=True)


def prewarm_scenarios(zoo):
    """Run the Fig. 5 sweep suites through the parallel runner."""
    runner = ParallelRunner()
    kwargs = {"mocc_agent": zoo.mocc_offline(quality="full"),
              "aurora_agent": zoo.aurora("throughput", quality="full")}
    for objective, weights in [("throughput", THROUGHPUT_WEIGHTS),
                               ("latency", LATENCY_WEIGHTS)]:
        for param, values in FIG5_BENCH_SWEEPS:
            t0 = time.time()
            sweep_schemes(FIG5_BENCH_SCHEMES, param, values,
                          base=FIG5_BENCH_BASE, duration=FIG5_BENCH_DURATION,
                          seed=FIG5_BENCH_SEED,
                          controller_kwargs={**kwargs, "mocc_weights": weights},
                          runner=runner)
            print(f"[prewarm] fig5 {objective}/{param} "
                  f"({len(FIG5_BENCH_SCHEMES) * len(values)} scenarios): "
                  f"{time.time() - t0:.1f}s", flush=True)


def main():
    zoo = default_zoo()
    prewarm_models(zoo)
    prewarm_scenarios(zoo)


if __name__ == "__main__":
    main()
