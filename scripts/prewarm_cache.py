"""Pre-train and cache every model the test/benchmark suite needs."""
import time

from repro.models import default_zoo
from repro.core.weights import RTC_WEIGHTS, project_to_simplex


def main():
    zoo = default_zoo()
    jobs = [
        ("mocc fast", lambda: zoo.mocc_offline(quality="fast")),
        ("aurora thr fast", lambda: zoo.aurora("throughput", quality="fast")),
        ("aurora lat fast", lambda: zoo.aurora("latency", quality="fast")),
        ("mocc full", lambda: zoo.mocc_offline(quality="full")),
        ("aurora thr full", lambda: zoo.aurora("throughput", quality="full")),
        ("aurora lat full", lambda: zoo.aurora("latency", quality="full")),
        ("aurora rtc fast", lambda: zoo.aurora_for(RTC_WEIGHTS, tag="rtc", quality="fast")),
        ("aurora bulk fast", lambda: zoo.aurora_for(
            project_to_simplex([1.0, 0.0, 0.0]), tag="bulk", quality="fast")),
        ("enhanced aurora fast", lambda: zoo.enhanced_aurora(10, quality="fast")),
    ]
    for name, job in jobs:
        t0 = time.time()
        job()
        print(f"[prewarm] {name}: {time.time() - t0:.1f}s", flush=True)


if __name__ == "__main__":
    main()
