#!/usr/bin/env python
"""Convenience entry point for replint (works without installing repro).

Same CLI as ``python -m repro.analysis``; typical pre-commit use::

    python scripts/replint.py --changed-only
"""
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
