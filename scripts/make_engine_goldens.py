"""Regenerate the engine golden traces (tests/goldens/engine_golden.json).

The goldens pin the simulator's exact floats: ``tests/test_golden_traces.py``
re-runs the same seeded grid and asserts digest-identity, which is how
hot-path optimizations prove they did not move a single result bit.

Only regenerate when a PR *intentionally* changes simulation results
(new physics, fixed accounting) -- never to paper over an optimization
that failed bit-identity.  The grid definition lives next to the test
(``golden_suites``/``compute_goldens``) so generator and checker can
never drift apart.

Usage::

    PYTHONPATH=src python scripts/make_engine_goldens.py
"""

import json
import sys
from datetime import date
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tests"))

from test_golden_traces import GOLDEN_PATH, compute_goldens  # noqa: E402


def main() -> None:
    scenarios = compute_goldens()
    payload = {
        "generated": date.today().isoformat(),
        "numpy": np.__version__,
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(scenarios)} scenarios)")


if __name__ == "__main__":
    main()
